package svc

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autofl/internal/rng"
	"autofl/internal/sweep"
	"autofl/internal/sweep/dist"
)

// fakeRunner is a pure function of the cell seed — the svc-level twin
// of the dist tests' fake, standing in for a Scenario run.
func fakeRunner(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
	s := rng.New(seed)
	return sweep.Outcome{
		Converged:       s.Bool(0.5),
		Rounds:          1 + s.IntN(100),
		TimeToTargetSec: 10 * s.Float64(),
		EnergyToTargetJ: 100 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

func fakeRunners(rounds int, traced bool) sweep.Runner { return fakeRunner }

// execCounter wraps the fake runner with a per-cell execution count —
// the duplicate-execution audit the overlap tests assert on.
type execCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newExecCounter() *execCounter { return &execCounter{counts: make(map[string]int)} }

func (e *execCounter) runners(rounds int, traced bool) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		e.mu.Lock()
		e.counts[c.Key()]++
		e.mu.Unlock()
		return fakeRunner(ctx, c, seed)
	}
}

// total sums executions; duplicates counts cells executed > once.
func (e *execCounter) total() (n, duplicates int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.counts {
		n += c
		if c > 1 {
			duplicates++
		}
	}
	return n, duplicates
}

func testGrid(seed uint64, data ...string) sweep.Grid {
	if len(data) == 0 {
		data = []string{"iid"}
	}
	return sweep.Grid{
		Workloads:  []string{"CNN-MNIST"},
		Settings:   []string{"S3"},
		Data:       data,
		Policies:   []string{"FedAvg-Random", "AutoFL", "Power"},
		Replicates: 2,
		Seed:       seed,
	}
}

// serialJSON is the byte-identity baseline: a cold -parallel=1 local
// run of the grid.
func serialJSON(t *testing.T, g sweep.Grid) []byte {
	t.Helper()
	store, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := store.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// startDaemon runs a Service behind an httptest server and returns a
// client against it.
func startDaemon(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		srv.Close()
	})
	return s, &Client{BaseURL: srv.URL, HTTP: srv.Client()}
}

// startRegistry serves a registry on a loopback listener.
func startRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	return reg
}

// registerWorker dials a register-mode worker into the registry and
// waits for it to join the pool.
func registerWorker(t *testing.T, reg *Registry, name string, runners dist.RunnerFor) *dist.Worker {
	t.Helper()
	w, err := dist.NewDialWorker(name, 2, runners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Register(context.Background(), reg.Addr(), dist.RegisterOptions{
		MinBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	t.Cleanup(func() { w.Close() })
	return w
}

// waitWorkers polls until the registry holds n workers.
func waitWorkers(t *testing.T, reg *Registry, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Len() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("registry never reached %d workers (have %d)", n, reg.Len())
}

// waitJob polls the client until the job is terminal.
func waitJob(t *testing.T, c *Client, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Wait(ctx, id, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return st
}

// TestLocalServiceEndToEnd is the core service contract over HTTP:
// submit → poll → fetch, with the JSON and CSV result bytes identical
// to a cold serial run of the same grid.
func TestLocalServiceEndToEnd(t *testing.T) {
	g := testGrid(41, "iid", "noniid50")
	_, client := startDaemon(t, Config{Runners: fakeRunners, CacheDir: t.TempDir()})

	st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100, Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Total != g.Size() {
		t.Fatalf("submit status = %+v", st)
	}
	final := waitJob(t, client, st.ID)
	if final.State != StateDone || final.Done != g.Size() {
		t.Fatalf("final status = %+v", final)
	}
	if final.Name != "e2e" {
		t.Errorf("name dropped: %+v", final)
	}

	gotJSON, err := client.Result(context.Background(), st.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, serialJSON(t, g)) {
		t.Error("service JSON differs from serial local run")
	}
	gotCSV, err := client.Result(context.Background(), st.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	var wantCSV bytes.Buffer
	serial.WriteCSV(&wantCSV)
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Error("service CSV differs from serial local run")
	}
}

// TestRegisteredWorkersServeSubmission runs the full control-plane
// path: register-mode workers dial the registry, a submitted grid
// executes entirely on them, and the result is byte-identical to
// serial.
func TestRegisteredWorkersServeSubmission(t *testing.T) {
	g := testGrid(42, "iid", "noniid50")
	reg := startRegistry(t)
	counter := newExecCounter()
	registerWorker(t, reg, "w1", counter.runners)
	registerWorker(t, reg, "w2", counter.runners)
	waitWorkers(t, reg, 2)

	// The service-side Runners must never run in registry mode.
	banned := func(rounds int, traced bool) sweep.Runner {
		return func(context.Context, sweep.Cell, uint64) (sweep.Outcome, error) {
			t.Error("cell executed locally in registry mode")
			return sweep.Outcome{}, errors.New("local execution")
		}
	}
	_, client := startDaemon(t, Config{Runners: banned, Registry: reg, CacheDir: t.TempDir()})

	st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, client, st.ID)
	if final.State != StateDone {
		t.Fatalf("final status = %+v", final)
	}
	sum := 0
	for _, n := range final.Workers {
		sum += n
	}
	if sum != g.Size() {
		t.Errorf("worker counts %v do not sum to %d", final.Workers, g.Size())
	}
	got, err := client.Result(context.Background(), st.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialJSON(t, g)) {
		t.Error("daemon result differs from serial local run")
	}
	workers, err := client.Workers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 || workers[0].Name != "w1" || workers[1].Name != "w2" {
		t.Errorf("workers = %+v", workers)
	}
}

// TestOverlappingSubmissionsShareCache is the shared-store acceptance
// criterion: two clients submit overlapping grids; both results are
// byte-identical to cold serial runs, the overlap is served from the
// cache (hits > 0 on the later job), and no cell executes twice.
func TestOverlappingSubmissionsShareCache(t *testing.T) {
	const seed = 77
	g1 := testGrid(seed, "iid", "noniid50")
	g2 := testGrid(seed, "iid", "dir03") // shares every data=iid cell with g1
	reg := startRegistry(t)
	counter := newExecCounter()
	registerWorker(t, reg, "w1", counter.runners)
	registerWorker(t, reg, "w2", counter.runners)
	waitWorkers(t, reg, 2)

	_, client := startDaemon(t, Config{Runners: fakeRunners, Registry: reg, CacheDir: t.TempDir(), MaxConcurrent: 1})

	// Two clients, concurrently; MaxConcurrent=1 serializes execution
	// so whichever job runs second sees the first's commits.
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i, g := range []sweep.Grid{g1, g2} {
		wg.Add(1)
		go func(i int, g sweep.Grid) {
			defer wg.Done()
			st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i, g)
	}
	wg.Wait()
	finals := []JobStatus{waitJob(t, client, ids[0]), waitJob(t, client, ids[1])}

	for i, g := range []sweep.Grid{g1, g2} {
		if finals[i].State != StateDone {
			t.Fatalf("job %d: %+v", i, finals[i])
		}
		got, err := client.Result(context.Background(), ids[i], "")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, serialJSON(t, g)) {
			t.Errorf("job %d result differs from cold serial run", i)
		}
	}

	overlap := testGrid(seed, "iid").Size()
	union := g1.Size() + g2.Size() - overlap
	n, dups := counter.total()
	if n != union {
		t.Errorf("executed %d cells, want exactly the %d-cell union", n, union)
	}
	if dups != 0 {
		t.Errorf("%d cells executed more than once", dups)
	}
	if hits := finals[0].CacheHits + finals[1].CacheHits; hits != overlap {
		t.Errorf("cache hits = %d, want the %d-cell overlap", hits, overlap)
	}
}

// TestWorkerDeathAndMidSweepJoin covers the registry lifecycle under a
// running job: one worker dies mid-grid (its cells re-queue), a fresh
// worker joins mid-sweep and picks up queued cells, and the job still
// completes byte-identically.
func TestWorkerDeathAndMidSweepJoin(t *testing.T) {
	g := testGrid(43, "iid", "noniid50", "dir03")
	reg := startRegistry(t)

	var dying *dist.Worker
	var fired sync.Once
	joined := make(chan struct{})
	dyingRunners := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			fired.Do(func() {
				go func() {
					dying.Close() // death mid-grid
					close(joined)
				}()
			})
			return fakeRunner(ctx, c, seed)
		}
	}
	dying = registerWorker(t, reg, "dying", dyingRunners)
	waitWorkers(t, reg, 1)

	_, client := startDaemon(t, Config{Runners: fakeRunners, Registry: reg, CacheDir: t.TempDir()})
	st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	// The replacement registers only after the first worker died, so
	// it necessarily joins mid-sweep.
	<-joined
	registerWorker(t, reg, "replacement", fakeRunners)

	final := waitJob(t, client, st.ID)
	if final.State != StateDone || final.Done != g.Size() {
		t.Fatalf("final status = %+v", final)
	}
	if final.Workers["replacement"] == 0 {
		t.Errorf("mid-sweep joiner served nothing: %v", final.Workers)
	}
	got, err := client.Result(context.Background(), st.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialJSON(t, g)) {
		t.Error("result differs from serial after worker death + re-join")
	}
}

// TestRegistryMaintainStaticWorker pins the dial-out bootstrap: a
// legacy listen-mode worker named by address joins the pool via
// Maintain and serves a job.
func TestRegistryMaintainStaticWorker(t *testing.T) {
	w, err := dist.NewWorker("127.0.0.1:0", 2, fakeRunners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })

	reg := NewRegistry()
	t.Cleanup(func() { reg.Close() })
	reg.Maintain(w.Addr())
	waitWorkers(t, reg, 1)

	g := testGrid(44)
	_, client := startDaemon(t, Config{Runners: fakeRunners, Registry: reg})
	st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitJob(t, client, st.ID); final.State != StateDone {
		t.Fatalf("final status = %+v", final)
	}
}

// gatedRunners blocks cells of the "slow" workload until the gate
// opens (or the cell's context is canceled).
func gatedRunners(gate chan struct{}) dist.RunnerFor {
	return func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if c.Workload == "slow" {
				select {
				case <-gate:
				case <-ctx.Done():
					return sweep.Outcome{}, ctx.Err()
				}
			}
			return fakeRunner(ctx, c, seed)
		}
	}
}

// TestQueueBackpressureAndCancel exercises the bounded queue and both
// cancellation paths.
func TestQueueBackpressureAndCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	slow := sweep.Grid{Workloads: []string{"slow"}, Replicates: 1, Seed: 1}
	s, client := startDaemon(t, Config{Runners: gatedRunners(gate), QueueLimit: 1, MaxConcurrent: 1})

	running, err := client.Submit(context.Background(), JobSpec{Grid: slow, Name: "running"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it actually occupies the grid slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := client.Status(context.Background(), running.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	queued, err := client.Submit(context.Background(), JobSpec{Grid: testGrid(2), Name: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(context.Background(), JobSpec{Grid: testGrid(3)}); err == nil {
		t.Fatal("third submission must hit the queue bound")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.Code != 429 {
		t.Fatalf("queue-full error = %v, want 429", err)
	}

	// Cancel the queued job: it must go terminal without running.
	if st, err := client.Cancel(context.Background(), queued.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	// Cancel the running job: the gate never opens for it, so only
	// cancellation can finish it.
	if _, err := client.Cancel(context.Background(), running.ID); err != nil {
		t.Fatal(err)
	}
	if final := waitJob(t, client, running.ID); final.State != StateCanceled {
		t.Fatalf("canceled running job = %+v", final)
	}
	if _, err := client.Result(context.Background(), running.ID, ""); err == nil {
		t.Fatal("result of a canceled job must not be served")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.Code != 409 {
		t.Fatalf("unfinished-result error = %v, want 409", err)
	}
	_ = s
}

// TestDrainPersistsQueueAndResumes is the graceful-shutdown satellite:
// drain refuses new submissions with 503, cancels the running grid at
// the deadline, persists the queued spec, and a fresh service over the
// same cache dir resumes it.
func TestDrainPersistsQueueAndResumes(t *testing.T) {
	cacheDir := t.TempDir()
	gate := make(chan struct{})
	slow := sweep.Grid{Workloads: []string{"slow"}, Replicates: 1, Seed: 5}
	resumable := testGrid(6)

	s, client := startDaemon(t, Config{Runners: gatedRunners(gate), CacheDir: cacheDir, MaxConcurrent: 1})
	running, err := client.Submit(context.Background(), JobSpec{Grid: slow})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(context.Background(), JobSpec{Grid: resumable, Name: "resume-me"})
	if err != nil {
		t.Fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(drainCtx) }()

	// While draining: healthz 503 and submissions refused with 503.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := client.Submit(context.Background(), JobSpec{Grid: testGrid(7)}); err == nil {
		t.Fatal("draining daemon accepted a submission")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.Code != 503 {
		t.Fatalf("draining error = %v, want 503", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The running job was canceled at the deadline; the queued one was
	// persisted, not run.
	if st, _ := s.Status(running.ID); st.State != StateCanceled {
		t.Errorf("running job after drain = %+v", st)
	}
	if st, _ := s.Status(queued.ID); st.State != StateCanceled || !strings.Contains(st.Error, "persisted") {
		t.Errorf("queued job after drain = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, queuedSpecsName)); err != nil {
		t.Fatalf("persisted queue file: %v", err)
	}

	// A fresh daemon over the same cache dir resumes the spec.
	s2, client2 := startDaemon(t, Config{Runners: fakeRunners, CacheDir: cacheDir})
	if _, err := os.Stat(filepath.Join(cacheDir, queuedSpecsName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("persisted queue file not consumed: %v", err)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].Name != "resume-me" {
		t.Fatalf("resumed jobs = %+v", jobs)
	}
	final := waitJob(t, client2, jobs[0].ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %+v", final)
	}
	got, err := client2.Result(context.Background(), jobs[0].ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialJSON(t, resumable)) {
		t.Error("resumed job result differs from serial")
	}
}

// TestHTTPErrors pins the error envelope: unknown job 404, bad spec
// 400, result of an unfinished job 409.
func TestHTTPErrors(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, client := startDaemon(t, Config{Runners: gatedRunners(gate)})

	if _, err := client.Status(context.Background(), "job-999999"); err == nil {
		t.Fatal("unknown job must 404")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("unknown-job error = %v, want 404", err)
	}

	resp, err := client.http().Post(client.BaseURL+"/v1/sweeps", "application/json", strings.NewReader(`{"grid": {"seed": "not-a-number"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad spec status = %d, want 400", resp.StatusCode)
	}

	slow := sweep.Grid{Workloads: []string{"slow"}, Replicates: 1, Seed: 9}
	st, err := client.Submit(context.Background(), JobSpec{Grid: slow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Result(context.Background(), st.ID, ""); err == nil {
		t.Fatal("unfinished result must 409")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.Code != 409 {
		t.Fatalf("unfinished-result error = %v, want 409", err)
	}
}

// TestMetricsAndHealth smoke-tests the observability endpoints.
func TestMetricsAndHealth(t *testing.T) {
	_, client := startDaemon(t, Config{Runners: fakeRunners})
	st, err := client.Submit(context.Background(), JobSpec{Grid: testGrid(11)})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, client, st.ID)

	resp, err := client.http().Get(client.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	resp, err = client.http().Get(client.BaseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	if !strings.Contains(body, `autofl_sweepd_jobs{state="done"} 1`) {
		t.Errorf("metrics missing done-job count:\n%s", body)
	}
	if !strings.Contains(body, "autofl_sweepd_workers 0") {
		t.Errorf("metrics missing worker gauge:\n%s", body)
	}
}

// TestServiceLifecycleNoGoroutineLeaks runs repeated full daemon
// cycles — registry, workers, service, a served job, teardown — and
// checks the goroutine count returns to baseline.
func TestServiceLifecycleNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		reg := NewRegistry()
		if _, err := reg.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		w, err := dist.NewDialWorker("leakcheck", 2, fakeRunners)
		if err != nil {
			t.Fatal(err)
		}
		regCtx, stopReg := context.WithCancel(context.Background())
		go w.Register(regCtx, reg.Addr(), dist.RegisterOptions{MinBackoff: 5 * time.Millisecond})
		waitWorkers(t, reg, 1)

		s, err := New(Config{Runners: fakeRunners, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Submit(JobSpec{Grid: testGrid(uint64(20 + i)), Rounds: 100})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			cur, _ := s.Status(st.ID)
			if Terminal(cur.State) {
				if cur.State != StateDone {
					t.Fatalf("cycle %d job = %+v", i, cur)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(2 * time.Millisecond)
		}
		s.Close()
		stopReg()
		w.Close()
		reg.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked across daemon cycles: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
