// Package sweep is the experiment-orchestration engine of the AutoFL
// reproduction: it expands a declarative Grid of scenario axes
// (workloads × settings × data scenarios × environments × policies ×
// seed replicates) into cells and executes them through a pluggable
// Executor, with per-cell deterministic seeding, panic isolation,
// context cancellation, and progress reporting.
//
// The engine is deliberately independent of how a cell is executed,
// along two axes. A Runner maps one Cell (plus its derived seed) to an
// Outcome, so the same machinery drives full paper-scale evaluations
// (cmd/autofl-sweep via the root package's SweepRunner), the
// per-figure sweeps of internal/experiments, and reduced-scale
// benchmarks. An Executor decides where and how the expanded tasks
// run: the default LocalExecutor is an in-process goroutine pool, and
// internal/sweep/dist farms the same tasks to worker processes over
// TCP.
//
// Determinism is the design center. Every cell's seed is a pure
// function of the grid seed and the cell's key, so a run parallelized
// across GOMAXPROCS workers — or scattered across remote machines —
// produces byte-identical sorted output to a -parallel=1 run of the
// same grid.
package sweep

import (
	"fmt"
	"hash/fnv"
	"io"

	"autofl/internal/rng"
)

// Cell is one point of an expanded Grid: a concrete scenario plus a
// replicate index. Axis values are the public string names of the root
// autofl package (empty string selects that axis's default scenario
// value).
type Cell struct {
	Workload string `json:"workload"`
	Setting  string `json:"setting"`
	Data     string `json:"data"`
	Env      string `json:"env"`
	Policy   string `json:"policy"`
	// Mode and Alpha select the aggregation regime ("sync", "async",
	// "semi-async") and the staleness-weighting exponent. Devices and
	// Sample scale the scenario to a synthetic population fleet of that
	// many devices with per-round cohorts of Sample. All four are
	// extension axes: empty means the scenario default (synchronous
	// aggregation, explicit fleet), and an empty value contributes no
	// bytes to the cell identity, so pre-extension grids keep their
	// seeds and cache digests.
	Mode    string `json:"mode,omitempty"`
	Alpha   string `json:"alpha,omitempty"`
	Devices string `json:"devices,omitempty"`
	Sample  string `json:"sample,omitempty"`
	// Battery and Selection span the battery subsystem: Battery names a
	// harvesting preset ("none", "charger", "solar-diurnal") that
	// attaches the battery model, and Selection names a battery-aware
	// selection baseline ("random", "battery_weighted",
	// "all_available") that replaces the Policy axis for the cell (the
	// two are mutually exclusive). Both are extension axes like
	// Mode/Alpha: empty contributes no identity bytes.
	Battery   string `json:"battery,omitempty"`
	Selection string `json:"selection,omitempty"`
	Replicate int    `json:"replicate"`
}

// extensions lists the tagged extension axes in their fixed encoding
// order. The tag names are distinct and fixed forever: identity
// encoding relies on them. New axes append — earlier tags never move.
func (c Cell) extensions() [6]struct{ Tag, Val string } {
	return [6]struct{ Tag, Val string }{
		{"mode", c.Mode}, {"alpha", c.Alpha},
		{"devices", c.Devices}, {"sample", c.Sample},
		{"battery", c.Battery}, {"selection", c.Selection},
	}
}

// Key renders the cell for display and logs. Seed derivation uses the
// injective field encoding of CellSeed instead, so axis values that
// happen to contain the separators cannot collide.
func (c Cell) Key() string {
	k := fmt.Sprintf("%s/%s/%s/%s/%s#%d",
		c.Workload, c.Setting, c.Data, c.Env, c.Policy, c.Replicate)
	for _, e := range c.extensions() {
		if e.Val != "" {
			k += "/" + e.Tag + "=" + e.Val
		}
	}
	return k
}

// WriteIdentity writes the cell's injective identity encoding: each
// axis value length-prefixed, then the replicate index, then a tagged
// length-prefixed segment per non-empty extension axis. No two
// distinct cells produce the same bytes whatever characters their
// axis values contain. It is the single source of truth for every
// cell-identity hash — CellSeed here and the cache's CellDigest — so
// a new axis field only ever needs encoding in one place.
//
// The encoding is append-only: extension axes at their default (empty)
// value contribute no bytes, so every cell expressible before an axis
// existed keeps its exact identity — and therefore its seed, its cache
// digest, and its results — after the axis is added. Injectivity
// holds because the tags are distinct, ordered, and never a prefix of
// one another, and each value is length-prefixed.
func (c Cell) WriteIdentity(w io.Writer) {
	for _, f := range []string{c.Workload, c.Setting, c.Data, c.Env, c.Policy} {
		fmt.Fprintf(w, "%d:%s|", len(f), f)
	}
	fmt.Fprintf(w, "#%d", c.Replicate)
	for _, e := range c.extensions() {
		if e.Val != "" {
			fmt.Fprintf(w, "|%s=%d:%s", e.Tag, len(e.Val), e.Val)
		}
	}
}

// sameGroup reports whether two cells are replicates of the same
// scenario. Summaries aggregate over it.
func sameGroup(a, b Cell) bool {
	return a.Workload == b.Workload && a.Setting == b.Setting &&
		a.Data == b.Data && a.Env == b.Env && a.Policy == b.Policy &&
		a.Mode == b.Mode && a.Alpha == b.Alpha &&
		a.Devices == b.Devices && a.Sample == b.Sample &&
		a.Battery == b.Battery && a.Selection == b.Selection
}

// less orders cells by axis values with the replicate compared
// numerically, so sorted output is stable for any replicate count.
func (c Cell) less(o Cell) bool {
	if c.Workload != o.Workload {
		return c.Workload < o.Workload
	}
	if c.Setting != o.Setting {
		return c.Setting < o.Setting
	}
	if c.Data != o.Data {
		return c.Data < o.Data
	}
	if c.Env != o.Env {
		return c.Env < o.Env
	}
	if c.Policy != o.Policy {
		return c.Policy < o.Policy
	}
	if c.Mode != o.Mode {
		return c.Mode < o.Mode
	}
	if c.Alpha != o.Alpha {
		return c.Alpha < o.Alpha
	}
	if c.Devices != o.Devices {
		return c.Devices < o.Devices
	}
	if c.Sample != o.Sample {
		return c.Sample < o.Sample
	}
	if c.Battery != o.Battery {
		return c.Battery < o.Battery
	}
	if c.Selection != o.Selection {
		return c.Selection < o.Selection
	}
	return c.Replicate < o.Replicate
}

// Grid declares an experiment sweep: the cross product of the axis
// value sets, replicated Replicates times. An empty axis contributes a
// single empty value, which Runners interpret as that axis's default.
type Grid struct {
	Workloads []string `json:"workloads,omitempty"`
	Settings  []string `json:"settings,omitempty"`
	Data      []string `json:"data,omitempty"`
	Envs      []string `json:"envs,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	// Modes and Alphas span aggregation regimes and staleness
	// exponents; Devices and Samples span population sizes and
	// per-round cohort sizes. Empty axes contribute the single default
	// value (synchronous aggregation, the scenario's explicit fleet)
	// and leave cell identities unchanged.
	Modes   []string `json:"modes,omitempty"`
	Alphas  []string `json:"alphas,omitempty"`
	Devices []string `json:"devices,omitempty"`
	Samples []string `json:"samples,omitempty"`
	// Batteries and Selections span battery presets and battery-aware
	// selection baselines (see Cell.Battery/Cell.Selection). Empty axes
	// contribute the single default value (no battery model, the Policy
	// axis's selection) and leave cell identities unchanged.
	Batteries  []string `json:"batteries,omitempty"`
	Selections []string `json:"selections,omitempty"`
	Replicates int      `json:"replicates,omitempty"`
	// Seed is the grid master seed every cell seed derives from.
	Seed uint64 `json:"seed"`
}

// axisOrDefault substitutes the single-default axis for an empty set.
func axisOrDefault(vals []string) []string {
	if len(vals) == 0 {
		return []string{""}
	}
	return vals
}

// replicates returns the effective replicate count (at least 1).
func (g Grid) replicates() int {
	if g.Replicates < 1 {
		return 1
	}
	return g.Replicates
}

// Size is the number of cells the grid expands to.
func (g Grid) Size() int {
	n := len(axisOrDefault(g.Workloads)) *
		len(axisOrDefault(g.Settings)) *
		len(axisOrDefault(g.Data)) *
		len(axisOrDefault(g.Envs)) *
		len(axisOrDefault(g.Policies)) *
		len(axisOrDefault(g.Modes)) *
		len(axisOrDefault(g.Alphas)) *
		len(axisOrDefault(g.Devices)) *
		len(axisOrDefault(g.Samples)) *
		len(axisOrDefault(g.Batteries)) *
		len(axisOrDefault(g.Selections))
	return n * g.replicates()
}

// Cells expands the grid in deterministic order: workloads, settings,
// data, environments, policies, modes, alphas, devices, samples,
// batteries, selections, replicates — the slowest axis first.
func (g Grid) Cells() []Cell {
	out := make([]Cell, 0, g.Size())
	for _, w := range axisOrDefault(g.Workloads) {
		for _, s := range axisOrDefault(g.Settings) {
			for _, d := range axisOrDefault(g.Data) {
				for _, e := range axisOrDefault(g.Envs) {
					for _, p := range axisOrDefault(g.Policies) {
						for _, m := range axisOrDefault(g.Modes) {
							for _, a := range axisOrDefault(g.Alphas) {
								for _, dv := range axisOrDefault(g.Devices) {
									for _, sm := range axisOrDefault(g.Samples) {
										for _, bt := range axisOrDefault(g.Batteries) {
											for _, sl := range axisOrDefault(g.Selections) {
												for r := 0; r < g.replicates(); r++ {
													out = append(out, Cell{
														Workload: w, Setting: s, Data: d,
														Env: e, Policy: p,
														Mode: m, Alpha: a,
														Devices: dv, Sample: sm,
														Battery: bt, Selection: sl,
														Replicate: r,
													})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// CellSeed derives the cell's seed from the grid seed and the cell's
// identity: the WriteIdentity encoding hashed with FNV-1a — injective,
// so no two distinct cells share a seed whatever characters their axis
// values contain — and mixed with the grid seed through an rng.Stream
// draw, decorrelating the seeds of adjacent cells independently of
// expansion order or worker scheduling.
func (g Grid) CellSeed(c Cell) uint64 {
	h := fnv.New64a()
	c.WriteIdentity(h)
	return rng.New(g.Seed ^ h.Sum64()).Uint64()
}
