package sweep

import (
	"testing"
)

func testGrid() Grid {
	return Grid{
		Workloads:  []string{"CNN-MNIST"},
		Settings:   []string{"S3"},
		Data:       []string{"iid", "noniid50"},
		Envs:       []string{"ideal", "field"},
		Policies:   []string{"FedAvg-Random", "AutoFL"},
		Replicates: 3,
		Seed:       42,
	}
}

func TestGridSizeAndExpansion(t *testing.T) {
	g := testGrid()
	want := 1 * 1 * 2 * 2 * 2 * 3
	if g.Size() != want {
		t.Fatalf("Size = %d, want %d", g.Size(), want)
	}
	cells := g.Cells()
	if len(cells) != want {
		t.Fatalf("len(Cells) = %d, want %d", len(cells), want)
	}
	// Expansion order is deterministic: policies vary faster than envs,
	// replicates fastest of all.
	if cells[0].Replicate != 0 || cells[1].Replicate != 1 || cells[2].Replicate != 2 {
		t.Errorf("replicates not innermost: %+v", cells[:3])
	}
	if cells[0].Policy != "FedAvg-Random" || cells[3].Policy != "AutoFL" {
		t.Errorf("policy not second-innermost: %+v %+v", cells[0], cells[3])
	}
	// Keys are unique.
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate cell key %q", k)
		}
		seen[k] = true
	}
}

func TestGridEmptyAxesDefault(t *testing.T) {
	g := Grid{Policies: []string{"AutoFL"}}
	cells := g.Cells()
	if len(cells) != 1 {
		t.Fatalf("len(Cells) = %d, want 1", len(cells))
	}
	c := cells[0]
	if c.Workload != "" || c.Setting != "" || c.Data != "" || c.Env != "" {
		t.Errorf("empty axes should expand to the default value: %+v", c)
	}
	if g.Size() != 1 {
		t.Errorf("Size = %d, want 1", g.Size())
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	g := testGrid()
	cells := g.Cells()
	seeds := map[uint64]string{}
	for _, c := range cells {
		s1, s2 := g.CellSeed(c), g.CellSeed(c)
		if s1 != s2 {
			t.Fatalf("CellSeed(%v) not deterministic: %d vs %d", c, s1, s2)
		}
		if prev, dup := seeds[s1]; dup {
			t.Fatalf("seed collision between %q and %q", prev, c.Key())
		}
		seeds[s1] = c.Key()
	}
	// A different grid seed moves every cell seed.
	g2 := testGrid()
	g2.Seed = 43
	if g.CellSeed(cells[0]) == g2.CellSeed(cells[0]) {
		t.Error("cell seed did not change with the grid seed")
	}
}

func TestCellSeedInjectiveAcrossFieldBoundaries(t *testing.T) {
	// Axis values containing the display separators must not collide:
	// the seed encoding is length-prefixed, not separator-joined.
	g := Grid{Seed: 7}
	a := Cell{Workload: "a/b", Setting: "c"}
	b := Cell{Workload: "a", Setting: "b/c"}
	if g.CellSeed(a) == g.CellSeed(b) {
		t.Error("field-boundary shift produced a seed collision")
	}
	c := Cell{Policy: "p#1", Replicate: 0}
	d := Cell{Policy: "p", Replicate: 10}
	if g.CellSeed(c) == g.CellSeed(d) {
		t.Error("policy/replicate boundary produced a seed collision")
	}
}

func TestCellOrdering(t *testing.T) {
	a := Cell{Workload: "w", Policy: "p", Replicate: 2}
	b := Cell{Workload: "w", Policy: "p", Replicate: 10}
	if !a.less(b) || b.less(a) {
		t.Error("replicates must order numerically (2 < 10)")
	}
	c := Cell{Workload: "a"}
	d := Cell{Workload: "b"}
	if !c.less(d) {
		t.Error("workloads must order lexically")
	}
}
