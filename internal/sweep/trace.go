package sweep

import "autofl/internal/sim"

// TraceVersion gates the RunTrace payload layout. Consumers must
// ignore payloads with an unknown version (treat the entry as
// trace-free) rather than misreading them.
const TraceVersion = 1

// RunTrace is the versioned per-round trace payload of one executed
// cell: parallel per-round arrays plus the run's accuracy target and
// floor. Because every simulated round depends only on the rounds
// before it — never on the horizon — the first h rounds of a trace
// replay exactly what a run bounded at h rounds would have measured,
// so a long cached run can answer any shorter-horizon request
// byte-identically (OutcomeAt).
type RunTrace struct {
	V int `json:"v"`
	// TargetAccuracy and AccuracyFloor echo the run configuration;
	// replay needs them to re-derive convergence and progress.
	TargetAccuracy float64 `json:"target_accuracy"`
	AccuracyFloor  float64 `json:"accuracy_floor"`
	// Per-round arrays, index = zero-based round: wall-clock seconds,
	// fleet energy, participants-only energy, post-round accuracy.
	Sec                []float64 `json:"sec"`
	EnergyJ            []float64 `json:"energy_j"`
	ParticipantEnergyJ []float64 `json:"participant_energy_j"`
	Accuracy           []float64 `json:"accuracy"`
	// Staleness is the per-round mean update staleness. It is recorded
	// only for runs where some round saw a stale update (asynchronous
	// aggregation); absent otherwise, keeping synchronous trace
	// payloads byte-identical to their pre-async form.
	Staleness []float64 `json:"staleness,omitempty"`
	// Jain and BatteryFrac are the per-round participation-fairness
	// index and candidate mean state of charge. Recorded only for
	// battery-enabled runs; absent otherwise, keeping batteryless trace
	// payloads byte-identical to their pre-battery form.
	Jain        []float64 `json:"jain,omitempty"`
	BatteryFrac []float64 `json:"battery_frac,omitempty"`
}

// NewRunTrace converts a finished run's per-round record (Trace plus
// the parallel AccuracyTrace, equal length by construction) into the
// cacheable payload.
func NewRunTrace(res *sim.Result) *RunTrace {
	t := &RunTrace{
		V:                  TraceVersion,
		TargetAccuracy:     res.TargetAccuracy,
		AccuracyFloor:      res.AccuracyFloor,
		Sec:                make([]float64, len(res.Trace)),
		EnergyJ:            make([]float64, len(res.Trace)),
		ParticipantEnergyJ: make([]float64, len(res.Trace)),
		Accuracy:           append([]float64(nil), res.AccuracyTrace...),
	}
	for i, r := range res.Trace {
		t.Sec[i] = r.Sec
		t.EnergyJ[i] = r.EnergyJ
		t.ParticipantEnergyJ[i] = r.ParticipantEnergyJ
	}
	for _, r := range res.Trace {
		if r.MeanStale != 0 {
			t.Staleness = make([]float64, len(res.Trace))
			for i, rr := range res.Trace {
				t.Staleness[i] = rr.MeanStale
			}
			break
		}
	}
	if res.Battery != nil {
		t.Jain = make([]float64, len(res.Trace))
		t.BatteryFrac = make([]float64, len(res.Trace))
		for i, r := range res.Trace {
			t.Jain[i] = r.Jain
			t.BatteryFrac[i] = r.BatteryFrac
		}
	}
	return t
}

// Valid reports whether the payload is one this code can replay: a
// known version and consistent array lengths.
func (t *RunTrace) Valid() bool {
	if t == nil || t.V != TraceVersion {
		return false
	}
	n := len(t.Sec)
	return len(t.EnergyJ) == n && len(t.ParticipantEnergyJ) == n && len(t.Accuracy) == n &&
		(len(t.Staleness) == 0 || len(t.Staleness) == n) &&
		(len(t.Jain) == 0 || len(t.Jain) == n) &&
		(len(t.BatteryFrac) == 0 || len(t.BatteryFrac) == n)
}

// Rounds is the number of recorded rounds.
func (t *RunTrace) Rounds() int { return len(t.Sec) }

// OutcomeAt replays the trace under a horizon of the given round
// count, reproducing — bit for bit — the Outcome a fresh run bounded
// at that horizon would report. It mirrors the engine's round loop
// exactly: sums accumulate in round order, the run ends at the first
// round whose accuracy reaches the target, and the efficiency metrics
// are derived through sim.Result so the progress arithmetic cannot
// drift from the engine's.
//
// The replay fails (ok == false) when the trace cannot witness the
// request: an invalid payload, or a horizon beyond the recorded
// rounds of a run that never converged.
func (t *RunTrace) OutcomeAt(rounds int) (Outcome, bool) {
	if !t.Valid() || rounds <= 0 {
		return Outcome{}, false
	}
	res := sim.Result{
		TargetAccuracy: t.TargetAccuracy,
		AccuracyFloor:  t.AccuracyFloor,
	}
	acc := t.AccuracyFloor
	staleSum := 0.0
	jain, battFrac := 0.0, 0.0
	for i := 0; i < rounds && i < len(t.Sec); i++ {
		acc = t.Accuracy[i]
		res.Rounds++
		res.TimeToTargetSec += t.Sec[i]
		res.EnergyToTargetJ += t.EnergyJ[i]
		res.ParticipantEnergyToTargetJ += t.ParticipantEnergyJ[i]
		if len(t.Staleness) > 0 {
			staleSum += t.Staleness[i]
		}
		if len(t.Jain) > 0 {
			// The battery fields report last-round values, not sums:
			// replay carries the latest round's numbers forward.
			jain, battFrac = t.Jain[i], t.BatteryFrac[i]
		}
		if !res.Converged && acc >= t.TargetAccuracy {
			res.Converged = true
			res.ConvergedRound = i + 1
			break
		}
	}
	res.FinalAccuracy = acc
	if res.Rounds > 0 {
		// Same order of operations as the engine's finalize step, so
		// the replayed mean is bit-identical to a fresh run's.
		res.MeanStaleness = staleSum / float64(res.Rounds)
	}
	if !res.Converged && res.Rounds < rounds {
		// The trace ran out before the requested horizon without
		// converging: it cannot witness rounds it never executed.
		return Outcome{}, false
	}
	return Outcome{
		Converged:         res.Converged,
		Rounds:            res.Rounds,
		TimeToTargetSec:   res.TimeToTargetSec,
		EnergyToTargetJ:   res.EnergyToTargetJ,
		GlobalPPW:         res.GlobalPPW(),
		LocalPPW:          res.LocalPPW(),
		FinalAccuracy:     res.FinalAccuracy,
		MeanStaleness:     res.MeanStaleness,
		ParticipationJain: jain,
		BatteryMeanFrac:   battFrac,
	}, true
}
