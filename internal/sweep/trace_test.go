package sweep

import (
	"testing"

	"autofl/internal/sim"
)

// syntheticTrace builds a deterministic n-round trace whose accuracy
// climbs linearly from floor toward ceiling, crossing target at round
// crossAt (1-based; 0 = never).
func syntheticTrace(n, crossAt int) *RunTrace {
	t := &RunTrace{
		V:              TraceVersion,
		TargetAccuracy: 0.9,
		AccuracyFloor:  0.1,
	}
	for i := 0; i < n; i++ {
		acc := 0.1 + 0.7*float64(i+1)/float64(n+1) // stays below 0.9
		if crossAt > 0 && i+1 >= crossAt {
			acc = 0.95
		}
		t.Sec = append(t.Sec, float64(10+i))
		t.EnergyJ = append(t.EnergyJ, float64(100+i))
		t.ParticipantEnergyJ = append(t.ParticipantEnergyJ, float64(40+i))
		t.Accuracy = append(t.Accuracy, acc)
	}
	return t
}

func TestOutcomeAtTruncates(t *testing.T) {
	tr := syntheticTrace(100, 0)
	out, ok := tr.OutcomeAt(30)
	if !ok {
		t.Fatal("OutcomeAt(30) failed on a 100-round trace")
	}
	if out.Converged || out.Rounds != 30 {
		t.Errorf("truncated outcome = %+v, want 30 unconverged rounds", out)
	}
	var sec, energy float64
	for i := 0; i < 30; i++ {
		sec += tr.Sec[i]
		energy += tr.EnergyJ[i]
	}
	if out.TimeToTargetSec != sec || out.EnergyToTargetJ != energy {
		t.Error("truncated sums differ from prefix sums")
	}
	if out.FinalAccuracy != tr.Accuracy[29] {
		t.Errorf("final accuracy %v, want round-30 accuracy %v", out.FinalAccuracy, tr.Accuracy[29])
	}
	if out.GlobalPPW <= 0 || out.LocalPPW <= 0 {
		t.Error("truncated outcome lost its efficiency metrics")
	}
	if out.Trace != nil {
		t.Error("replayed outcome must not carry a trace payload")
	}
}

func TestOutcomeAtConvergence(t *testing.T) {
	tr := syntheticTrace(60, 45) // run converged at round 45 and stopped
	tr.Sec = tr.Sec[:45]
	tr.EnergyJ = tr.EnergyJ[:45]
	tr.ParticipantEnergyJ = tr.ParticipantEnergyJ[:45]
	tr.Accuracy = tr.Accuracy[:45]

	// Any horizon >= the convergence round replays the same converged
	// run.
	for _, h := range []int{45, 100, 1000} {
		out, ok := tr.OutcomeAt(h)
		if !ok || !out.Converged || out.Rounds != 45 {
			t.Errorf("OutcomeAt(%d) = %+v, %v; want convergence at 45", h, out, ok)
		}
	}
	// A shorter horizon replays an unconverged prefix.
	out, ok := tr.OutcomeAt(20)
	if !ok || out.Converged || out.Rounds != 20 {
		t.Errorf("OutcomeAt(20) = %+v, %v; want 20 unconverged rounds", out, ok)
	}
}

func TestOutcomeAtCannotWitness(t *testing.T) {
	tr := syntheticTrace(50, 0) // ran 50 rounds, never converged
	if _, ok := tr.OutcomeAt(51); ok {
		t.Error("trace served a horizon beyond its unconverged recording")
	}
	if _, ok := tr.OutcomeAt(0); ok {
		t.Error("trace served a zero-round horizon")
	}
	if out, ok := tr.OutcomeAt(50); !ok || out.Rounds != 50 {
		t.Errorf("exact-length replay = %+v, %v", out, ok)
	}
}

func TestTraceValidity(t *testing.T) {
	var nilTrace *RunTrace
	if nilTrace.Valid() {
		t.Error("nil trace reported valid")
	}
	if _, ok := nilTrace.OutcomeAt(5); ok {
		t.Error("nil trace served an outcome")
	}
	wrongVersion := syntheticTrace(10, 0)
	wrongVersion.V = TraceVersion + 1
	if wrongVersion.Valid() {
		t.Error("unknown version reported valid")
	}
	ragged := syntheticTrace(10, 0)
	ragged.EnergyJ = ragged.EnergyJ[:5]
	if ragged.Valid() {
		t.Error("ragged arrays reported valid")
	}
	// Staleness is optional (absent for synchronous runs) but must be
	// full-length when present.
	withStale := syntheticTrace(10, 0)
	withStale.Staleness = make([]float64, 10)
	if !withStale.Valid() {
		t.Error("full-length staleness reported invalid")
	}
	raggedStale := syntheticTrace(10, 0)
	raggedStale.Staleness = make([]float64, 4)
	if raggedStale.Valid() {
		t.Error("ragged staleness reported valid")
	}
}

// TestTraceStalenessReplay pins the async extension of the prefix
// contract: a trace carrying per-round staleness replays the exact
// run-level mean at any horizon, and synchronous traces (no staleness
// array) replay a zero mean.
func TestTraceStalenessReplay(t *testing.T) {
	tr := syntheticTrace(50, 0)
	tr.Staleness = make([]float64, 50)
	for i := range tr.Staleness {
		tr.Staleness[i] = float64(i % 7)
	}
	for _, h := range []int{1, 20, 50} {
		out, ok := tr.OutcomeAt(h)
		if !ok {
			t.Fatalf("OutcomeAt(%d) failed", h)
		}
		sum := 0.0
		for i := 0; i < h; i++ {
			sum += tr.Staleness[i]
		}
		if want := sum / float64(h); out.MeanStaleness != want {
			t.Errorf("OutcomeAt(%d).MeanStaleness = %g, want %g", h, out.MeanStaleness, want)
		}
	}
	sync := syntheticTrace(50, 0)
	if out, ok := sync.OutcomeAt(20); !ok || out.MeanStaleness != 0 {
		t.Errorf("staleness-free replay mean = %g, want 0", out.MeanStaleness)
	}
}

// TestNewRunTraceStalenessGating: the staleness array is recorded only
// when some round actually saw a stale update, so synchronous cache
// payloads keep their pre-async bytes.
func TestNewRunTraceStalenessGating(t *testing.T) {
	syncRes := &sim.Result{
		TargetAccuracy: 0.9, AccuracyFloor: 0.1,
		AccuracyTrace: []float64{0.3, 0.5},
		Trace:         []sim.RoundTrace{{Sec: 1}, {Sec: 2}},
	}
	if tr := NewRunTrace(syncRes); tr.Staleness != nil {
		t.Error("synchronous trace recorded a staleness array")
	}
	asyncRes := &sim.Result{
		TargetAccuracy: 0.9, AccuracyFloor: 0.1,
		AccuracyTrace: []float64{0.3, 0.5},
		Trace:         []sim.RoundTrace{{Sec: 1}, {Sec: 2, MeanStale: 1.5}},
	}
	tr := NewRunTrace(asyncRes)
	if len(tr.Staleness) != 2 || tr.Staleness[1] != 1.5 {
		t.Errorf("async trace staleness = %v, want [0 1.5]", tr.Staleness)
	}
	if !tr.Valid() {
		t.Error("async trace reported invalid")
	}
}

// TestNewRunTraceRoundTrips checks the sim.Result conversion
// preserves every per-round value and the replay of the full length
// reproduces the run's own aggregates.
func TestNewRunTraceRoundTrips(t *testing.T) {
	res := &sim.Result{
		TargetAccuracy: 0.9,
		AccuracyFloor:  0.1,
		AccuracyTrace:  []float64{0.3, 0.5},
		Trace: []sim.RoundTrace{
			{Sec: 1.5, EnergyJ: 10, ParticipantEnergyJ: 4},
			{Sec: 2.5, EnergyJ: 11, ParticipantEnergyJ: 5},
		},
	}
	tr := NewRunTrace(res)
	if !tr.Valid() || tr.Rounds() != 2 {
		t.Fatalf("converted trace invalid: %+v", tr)
	}
	out, ok := tr.OutcomeAt(2)
	if !ok {
		t.Fatal("full-length replay failed")
	}
	if out.TimeToTargetSec != 4.0 || out.EnergyToTargetJ != 21 || out.FinalAccuracy != 0.5 {
		t.Errorf("replayed outcome = %+v", out)
	}
}
