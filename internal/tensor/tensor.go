// Package tensor provides the minimal dense linear algebra used by the
// pure-Go training substrate (internal/nn): row-major float64 matrices
// with the handful of operations an MLP's forward and backward passes
// need. It is deliberately small — clarity over BLAS tricks — since
// the real-training path exists to validate learning behaviour, not to
// chase throughput.
package tensor

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values cannot fill %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view of row r (shared storage).
func (m *Matrix) Row(r int) []float64 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulAT returns aᵀ·b without materializing the transpose.
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulAT shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow, brow := a.Row(r), b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulBT returns a·bᵀ without materializing the transpose.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulBT shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// AddRow adds vector v to every row of m in place.
func (m *Matrix) AddRow(v []float64) {
	if len(v) != m.Cols {
		panic("tensor: AddRow length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v[c]
		}
	}
}

// ColSums returns the per-column sums.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out[c] += v
		}
	}
	return out
}

// Scale multiplies every element in place.
func (m *Matrix) Scale(f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// AddScaled adds f·other to m in place.
func (m *Matrix) AddScaled(other *Matrix, f float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += f * other.Data[i]
	}
}

// Apply replaces every element with f(element).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}
