package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMulAT(a, b) // aᵀ·b: 2x2
	at := FromSlice(2, 3, []float64{1, 3, 5, 2, 4, 6})
	want := MatMul(at, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatMulAT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(4, 3, []float64{1, 0, 1, 0, 1, 0, 2, 2, 2, 1, 1, 1})
	got := MatMulBT(a, b) // a·bᵀ: 2x4
	bt := FromSlice(3, 4, []float64{1, 0, 2, 1, 0, 1, 2, 1, 1, 0, 2, 1})
	want := MatMul(a, bt)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatMulBT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 5)
	if m.At(1, 0) != 5 {
		t.Error("At/Set roundtrip failed")
	}
	row := m.Row(1)
	row[1] = 7
	if m.At(1, 1) != 7 {
		t.Error("Row must be a shared view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Error("Clone must copy storage")
	}
}

func TestAddRowAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 1, 1, 2, 2, 2})
	m.AddRow([]float64{10, 20, 30})
	if m.At(0, 2) != 31 || m.At(1, 0) != 12 {
		t.Errorf("AddRow result wrong: %v", m.Data)
	}
	sums := m.ColSums()
	if sums[0] != 23 || sums[1] != 43 || sums[2] != 63 {
		t.Errorf("ColSums = %v", sums)
	}
}

func TestScaleAddScaledApply(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	if m.Data[2] != 6 {
		t.Error("Scale wrong")
	}
	m.AddScaled(FromSlice(1, 3, []float64{1, 1, 1}), -1)
	if m.Data[0] != 1 || m.Data[1] != 3 || m.Data[2] != 5 {
		t.Errorf("AddScaled = %v", m.Data)
	}
	m.Apply(func(v float64) float64 { return v * v })
	if m.Data[2] != 25 {
		t.Error("Apply wrong")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length should panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, exercised through the fused transpose
// multiplies.
func TestTransposeIdentityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%4 + 1
		a := New(n, n+1)
		b := New(n+1, n)
		for i := range a.Data {
			a.Data[i] = float64((int(seed)+i*7)%11) - 5
		}
		for i := range b.Data {
			b.Data[i] = float64((int(seed)+i*3)%13) - 6
		}
		ab := MatMul(a, b) // n×n
		// (A·B)[i][j] must equal MatMulBT(A, Bᵀ-as-rows)[i][j]; check
		// via MatMulAT on transposed inputs instead: Bᵀ·Aᵀ == (A·B)ᵀ.
		bt := New(b.Cols, b.Rows)
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		at := New(a.Cols, a.Rows)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		btat := MatMul(bt, at)
		for i := 0; i < ab.Rows; i++ {
			for j := 0; j < ab.Cols; j++ {
				if math.Abs(ab.At(i, j)-btat.At(j, i)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
