// Package workload describes the neural-network training workloads of
// the AutoFL evaluation as analytic cost models: the layer mix (CONV /
// FC / recurrent, the S_CONV / S_FC / S_RC state features of Table 1),
// per-sample training FLOPs, data-movement bytes, parameter counts and
// gradient payload sizes.
//
// These models drive the roofline throughput computation in
// internal/device and the round timing/energy accounting in
// internal/sim. The three predefined workloads correspond to the
// paper's §5.2: CNN-MNIST, LSTM-Shakespeare, and MobileNet-ImageNet.
package workload

import "fmt"

// LayerKind classifies a layer the way AutoFL's state space does
// (Table 1): convolution, fully-connected, or recurrent.
type LayerKind int

const (
	// Conv is a convolutional layer: high arithmetic intensity,
	// compute-bound on mobile SoCs.
	Conv LayerKind = iota
	// FC is a fully-connected layer: moderate intensity.
	FC
	// RC is a recurrent layer (LSTM/GRU cell): low intensity,
	// memory-bandwidth-bound.
	RC
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case FC:
		return "FC"
	case RC:
		return "RC"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is one layer of a training workload, described by its cost
// rather than its mathematical definition.
type Layer struct {
	Kind LayerKind
	// FwdFLOPsPerSample is the forward-pass floating-point work for a
	// single training sample.
	FwdFLOPsPerSample float64
	// Params is the number of trainable parameters.
	Params int
	// ActivationBytes is the activation traffic (read + write) per
	// sample for the forward pass.
	ActivationBytes float64
}

// Dataset describes the federated dataset a workload trains on. Sample
// counts are per the entire population of devices.
type Dataset struct {
	Name string
	// Classes is the number of label classes; it bounds the S_Data
	// state feature.
	Classes int
	// SamplesPerDevice is the mean number of local training samples
	// held by one device.
	SamplesPerDevice int
	// SampleBytes is the wire/storage size of one sample.
	SampleBytes int
}

// Model is a complete training workload: a named layer stack plus the
// dataset it trains on and the accuracy envelope used by the
// convergence model.
type Model struct {
	Name    string
	Layers  []Layer
	Dataset Dataset

	// AccuracyFloor is the untrained (random-guess) accuracy.
	AccuracyFloor float64
	// AccuracyCeiling is the best accuracy the model family attains on
	// the dataset.
	AccuracyCeiling float64
	// BaseProgressRate scales how much one reference round of fully
	// IID updates closes the gap to the ceiling (see internal/sim).
	BaseProgressRate float64
}

// CountLayers returns the number of layers of each kind, in the order
// (CONV, FC, RC) used by the Table 1 state features.
func (m *Model) CountLayers() (conv, fc, rc int) {
	for _, l := range m.Layers {
		switch l.Kind {
		case Conv:
			conv++
		case FC:
			fc++
		case RC:
			rc++
		}
	}
	return
}

// Params returns the total trainable parameter count.
func (m *Model) Params() int {
	total := 0
	for _, l := range m.Layers {
		total += l.Params
	}
	return total
}

// GradientBytes is the size of one gradient (or model) payload on the
// wire: float32 per parameter, as in the paper's FedAvg deployments.
func (m *Model) GradientBytes() float64 { return 4 * float64(m.Params()) }

// FwdFLOPsPerSample is the forward-pass work per sample across all
// layers.
func (m *Model) FwdFLOPsPerSample() float64 {
	total := 0.0
	for _, l := range m.Layers {
		total += l.FwdFLOPsPerSample
	}
	return total
}

// TrainFLOPsPerSample is the full fwd+bwd+update work per sample. The
// standard estimate for SGD training is 3x the forward pass (one
// forward, two backward-sized passes).
func (m *Model) TrainFLOPsPerSample() float64 { return 3 * m.FwdFLOPsPerSample() }

// BytesPerSample is the data movement per training sample: activations
// (forward and backward) plus one sweep over parameters and gradients
// amortized across the minibatch. batch must be >= 1.
func (m *Model) BytesPerSample(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	act := 0.0
	params := 0.0
	for _, l := range m.Layers {
		act += l.ActivationBytes
		params += float64(l.Params)
	}
	// Forward + backward roughly doubles activation traffic; weights
	// and gradients are touched once per minibatch (4 bytes each way).
	return 2*act + 8*params/float64(batch)
}

// Intensity is the arithmetic intensity (FLOP per byte moved) of
// training with the given minibatch size. It determines whether a
// device runs the workload compute-bound or memory-bound in the
// roofline model.
func (m *Model) Intensity(batch int) float64 {
	b := m.BytesPerSample(batch)
	if b == 0 {
		return 0
	}
	return m.TrainFLOPsPerSample() / b
}

// GlobalParams is the (B, E, K) tuple fixed by the FL service operator
// (§2.1): minibatch size, local epochs, and participants per round.
type GlobalParams struct {
	B int // minibatch size
	E int // local epochs
	K int // participant devices per round
}

// Settings S1–S4 from Table 5 of the paper.
var (
	S1 = GlobalParams{B: 32, E: 10, K: 20}
	S2 = GlobalParams{B: 32, E: 5, K: 20}
	S3 = GlobalParams{B: 16, E: 5, K: 20}
	S4 = GlobalParams{B: 16, E: 5, K: 10}
)

// Settings lists S1–S4 in order, for parameter sweeps.
func Settings() []GlobalParams { return []GlobalParams{S1, S2, S3, S4} }

// SettingName returns "S1".."S4" for the Table 5 settings and a
// formatted tuple otherwise.
func SettingName(p GlobalParams) string {
	switch p {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	case S4:
		return "S4"
	}
	return fmt.Sprintf("(B=%d,E=%d,K=%d)", p.B, p.E, p.K)
}

// CNNMNIST returns the CNN-MNIST workload (§5.2 workload 1): a small
// convolutional classifier in the style of the FedAvg paper's MNIST
// CNN — two conv layers and two FC layers, 10 classes. Compute-bound:
// CONV and FC layers dominate.
func CNNMNIST() *Model {
	return &Model{
		Name: "CNN-MNIST",
		Layers: []Layer{
			// 5x5x32 conv over 28x28x1, then 5x5x64 conv over 14x14x32.
			{Kind: Conv, FwdFLOPsPerSample: 2 * 28 * 28 * 5 * 5 * 32, Params: 5*5*32 + 32, ActivationBytes: 4 * 28 * 28 * 32},
			{Kind: Conv, FwdFLOPsPerSample: 2 * 14 * 14 * 5 * 5 * 32 * 64, Params: 5*5*32*64 + 64, ActivationBytes: 4 * 14 * 14 * 64},
			{Kind: FC, FwdFLOPsPerSample: 2 * 7 * 7 * 64 * 512, Params: 7*7*64*512 + 512, ActivationBytes: 4 * 512},
			{Kind: FC, FwdFLOPsPerSample: 2 * 512 * 10, Params: 512*10 + 10, ActivationBytes: 4 * 10},
		},
		Dataset: Dataset{
			Name:             "MNIST",
			Classes:          10,
			SamplesPerDevice: 300, // 60k train samples spread over 200 devices
			SampleBytes:      28*28 + 1,
		},
		AccuracyFloor:    0.10,
		AccuracyCeiling:  0.99,
		BaseProgressRate: 0.018,
	}
}

// LSTMShakespeare returns the LSTM-Shakespeare workload (§5.2 workload
// 2): next-character prediction with stacked LSTM cells. Recurrent
// layers dominate, so training is memory-bandwidth-bound and the
// performance gap between device tiers shrinks (§3.1).
func LSTMShakespeare() *Model {
	const (
		hidden = 256
		vocab  = 80 // printable characters in the Shakespeare corpus
		seqLen = 80
	)
	// One LSTM cell step: 8*h*(h+in) MACs = 16*h*(h+in) FLOPs, over
	// seqLen steps.
	cellFLOPs := func(in int) float64 { return 16 * hidden * float64(hidden+in) * seqLen }
	cellParams := func(in int) int { return 4 * hidden * (hidden + in + 1) }
	// Recurrent layers are memory-bandwidth-bound (§3.1): the gate
	// weight matrices are streamed from DRAM at every timestep because
	// the recurrence prevents the cross-sample reuse that convolutions
	// enjoy. We fold that per-step weight traffic into the layer's
	// activation bytes (ActivationBytes is halved here because
	// BytesPerSample doubles it to account for the backward pass,
	// which re-reads the weights too).
	cellBytes := func(in int) float64 {
		stateBytes := 4.0 * hidden * 6 * seqLen // gates + cell + hidden per step
		weightBytes := 4.0 * float64(cellParams(in)) * seqLen
		return stateBytes + weightBytes/2
	}
	return &Model{
		Name: "LSTM-Shakespeare",
		Layers: []Layer{
			{Kind: RC, FwdFLOPsPerSample: cellFLOPs(vocab), Params: cellParams(vocab), ActivationBytes: cellBytes(vocab)},
			{Kind: RC, FwdFLOPsPerSample: cellFLOPs(hidden), Params: cellParams(hidden), ActivationBytes: cellBytes(hidden)},
			{Kind: FC, FwdFLOPsPerSample: 2 * hidden * vocab * seqLen, Params: hidden*vocab + vocab, ActivationBytes: 4 * vocab * seqLen},
		},
		Dataset: Dataset{
			Name:             "Shakespeare",
			Classes:          vocab,
			SamplesPerDevice: 200,
			SampleBytes:      seqLen + 1,
		},
		AccuracyFloor:    0.02,
		AccuracyCeiling:  0.58, // char-level prediction ceilings are low
		BaseProgressRate: 0.016,
	}
}

// MobileNetImageNet returns the MobileNet-ImageNet workload (§5.2
// workload 3): a depthwise-separable CNN with 27 convolutional layers
// and a classifier head, ~4.2M parameters, ~0.57 GFLOPs per forward
// sample — the published MobileNetV1 figures.
func MobileNetImageNet() *Model {
	layers := make([]Layer, 0, 28)
	// First full conv, then 13 depthwise-separable blocks (each a
	// depthwise conv + a pointwise conv = 26 conv layers), then FC.
	layers = append(layers, Layer{Kind: Conv, FwdFLOPsPerSample: 21e6, Params: 864, ActivationBytes: 4 * 112 * 112 * 32})
	type block struct {
		flops  float64
		params int
		act    float64
	}
	blocks := []block{
		{23e6, 4.5e3, 4 * 112 * 112 * 64},
		{35e6, 10e3, 4 * 56 * 56 * 128},
		{50e6, 18e3, 4 * 56 * 56 * 128},
		{48e6, 35e3, 4 * 28 * 28 * 256},
		{65e6, 70e3, 4 * 28 * 28 * 256},
		{60e6, 135e3, 4 * 14 * 14 * 512},
		{70e6, 265e3, 4 * 14 * 14 * 512},
		{70e6, 265e3, 4 * 14 * 14 * 512},
		{70e6, 265e3, 4 * 14 * 14 * 512},
		{70e6, 265e3, 4 * 14 * 14 * 512},
		{70e6, 265e3, 4 * 14 * 14 * 512},
		{55e6, 525e3, 4 * 7 * 7 * 1024},
		{60e6, 1.05e6, 4 * 7 * 7 * 1024},
	}
	for _, b := range blocks {
		// Split each separable block into its depthwise (cheap) and
		// pointwise (dominant) halves.
		layers = append(layers,
			Layer{Kind: Conv, FwdFLOPsPerSample: b.flops * 0.1, Params: int(float64(b.params) * 0.05), ActivationBytes: b.act * 0.5},
			Layer{Kind: Conv, FwdFLOPsPerSample: b.flops * 0.9, Params: int(float64(b.params) * 0.95), ActivationBytes: b.act * 0.5},
		)
	}
	layers = append(layers, Layer{Kind: FC, FwdFLOPsPerSample: 2 * 1024 * 1000, Params: 1024*1000 + 1000, ActivationBytes: 4 * 1000})
	return &Model{
		Name:   "MobileNet-ImageNet",
		Layers: layers,
		Dataset: Dataset{
			Name:             "ImageNet",
			Classes:          1000,
			SamplesPerDevice: 120,
			SampleBytes:      224 * 224 * 3,
		},
		AccuracyFloor:    0.001,
		AccuracyCeiling:  0.70,
		BaseProgressRate: 0.013,
	}
}

// All returns the three evaluation workloads in the paper's order.
func All() []*Model {
	return []*Model{CNNMNIST(), LSTMShakespeare(), MobileNetImageNet()}
}

// ByName returns the workload with the given name, or nil.
func ByName(name string) *Model {
	for _, m := range All() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
