package workload

import (
	"testing"
	"testing/quick"
)

func TestCNNMNISTLayerMix(t *testing.T) {
	m := CNNMNIST()
	conv, fc, rc := m.CountLayers()
	if conv != 2 || fc != 2 || rc != 0 {
		t.Errorf("CNN-MNIST layer mix = (%d conv, %d fc, %d rc), want (2, 2, 0)", conv, fc, rc)
	}
}

func TestLSTMLayerMix(t *testing.T) {
	m := LSTMShakespeare()
	conv, fc, rc := m.CountLayers()
	if rc != 2 || conv != 0 {
		t.Errorf("LSTM layer mix = (%d conv, %d fc, %d rc), want recurrent-dominated", conv, fc, rc)
	}
}

func TestMobileNetShape(t *testing.T) {
	m := MobileNetImageNet()
	conv, fc, _ := m.CountLayers()
	if conv != 27 {
		t.Errorf("MobileNet conv layers = %d, want 27", conv)
	}
	if fc != 1 {
		t.Errorf("MobileNet fc layers = %d, want 1", fc)
	}
	// Published MobileNetV1: ~4.2M params, ~0.57G mult-adds forward
	// (= ~1.1 GFLOPs at 2 FLOPs per MAC).
	params := m.Params()
	if params < 3_500_000 || params > 5_000_000 {
		t.Errorf("MobileNet params = %d, want ~4.2M", params)
	}
	fwd := m.FwdFLOPsPerSample()
	if fwd < 0.6e9 || fwd > 1.3e9 {
		t.Errorf("MobileNet forward FLOPs = %.3g, want ~1.1e9", fwd)
	}
}

func TestIntensityOrdering(t *testing.T) {
	// The paper's §3.1 observation: CNN training is compute-bound
	// (high intensity) while LSTM training is memory-bound (low
	// intensity). Intensity must reflect that ordering.
	const batch = 16
	cnn := CNNMNIST().Intensity(batch)
	lstm := LSTMShakespeare().Intensity(batch)
	mob := MobileNetImageNet().Intensity(batch)
	if cnn <= lstm {
		t.Errorf("CNN intensity %.2f not above LSTM intensity %.2f", cnn, lstm)
	}
	if mob <= lstm {
		t.Errorf("MobileNet intensity %.2f not above LSTM intensity %.2f", mob, lstm)
	}
}

func TestIntensityGrowsWithBatch(t *testing.T) {
	m := CNNMNIST()
	if m.Intensity(32) <= m.Intensity(1) {
		t.Error("larger batches should amortize weight traffic and raise intensity")
	}
}

func TestTrainFLOPsIsTripleForward(t *testing.T) {
	for _, m := range All() {
		if got, want := m.TrainFLOPsPerSample(), 3*m.FwdFLOPsPerSample(); got != want {
			t.Errorf("%s train FLOPs = %v, want %v", m.Name, got, want)
		}
	}
}

func TestGradientBytes(t *testing.T) {
	m := CNNMNIST()
	if got, want := m.GradientBytes(), 4*float64(m.Params()); got != want {
		t.Errorf("GradientBytes = %v, want %v", got, want)
	}
}

func TestSettingsTable5(t *testing.T) {
	if S1 != (GlobalParams{32, 10, 20}) {
		t.Errorf("S1 = %+v", S1)
	}
	if S2 != (GlobalParams{32, 5, 20}) {
		t.Errorf("S2 = %+v", S2)
	}
	if S3 != (GlobalParams{16, 5, 20}) {
		t.Errorf("S3 = %+v", S3)
	}
	if S4 != (GlobalParams{16, 5, 10}) {
		t.Errorf("S4 = %+v", S4)
	}
	if len(Settings()) != 4 {
		t.Error("Settings() should list S1..S4")
	}
}

func TestSettingName(t *testing.T) {
	if SettingName(S3) != "S3" {
		t.Errorf("SettingName(S3) = %q", SettingName(S3))
	}
	custom := GlobalParams{B: 64, E: 1, K: 5}
	if SettingName(custom) != "(B=64,E=1,K=5)" {
		t.Errorf("SettingName(custom) = %q", SettingName(custom))
	}
}

func TestComputationScalesWithSettings(t *testing.T) {
	// S1 assigns more per-device computation than S2 (E: 10 vs 5);
	// this drives the Fig 4 cluster shifts. Verify the per-round work
	// ordering the settings imply.
	m := CNNMNIST()
	work := func(p GlobalParams) float64 {
		batches := (m.Dataset.SamplesPerDevice + p.B - 1) / p.B
		return float64(p.E) * float64(batches) * float64(p.B) * m.TrainFLOPsPerSample()
	}
	if !(work(S1) > work(S2)) {
		t.Error("S1 should assign more per-device work than S2")
	}
	if w2, w3 := work(S2), work(S3); w3 > w2*1.05 {
		t.Errorf("S3 per-device work (%.3g) should not exceed S2 (%.3g)", w3, w2)
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		if got := ByName(m.Name); got == nil || got.Name != m.Name {
			t.Errorf("ByName(%q) failed", m.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown workload should be nil")
	}
}

func TestLayerKindString(t *testing.T) {
	if Conv.String() != "CONV" || FC.String() != "FC" || RC.String() != "RC" {
		t.Error("LayerKind String values wrong")
	}
	if LayerKind(9).String() != "LayerKind(9)" {
		t.Error("unknown LayerKind String wrong")
	}
}

// Property: cost metrics are positive and finite for all predefined
// workloads under any reasonable batch size.
func TestCostsPositiveProperty(t *testing.T) {
	models := All()
	f := func(batchRaw uint8) bool {
		batch := int(batchRaw)%128 + 1
		for _, m := range models {
			if m.TrainFLOPsPerSample() <= 0 || m.BytesPerSample(batch) <= 0 ||
				m.Intensity(batch) <= 0 || m.GradientBytes() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBytesPerSampleClampsBatch(t *testing.T) {
	m := CNNMNIST()
	if m.BytesPerSample(0) != m.BytesPerSample(1) {
		t.Error("batch < 1 should be clamped to 1")
	}
}
