package autofl

import (
	"reflect"
	"testing"

	"autofl/internal/device"
	"autofl/internal/sim"
)

// TestPopulationExhaustiveEquivalence is the tentpole's byte-identity
// property test at full breadth: across every environment and every
// policy, a cohort Population run in exhaustive mode (Sample == 0)
// produces a Result identical — field for field, including the full
// per-round trace — to the legacy pointer-fleet run it materializes.
// The population here is the paper's default 200-device tier mix, so
// the legacy side is exactly the engine's default fleet.
func TestPopulationExhaustiveEquivalence(t *testing.T) {
	for _, env := range Environments() {
		for _, p := range Policies() {
			t.Run(string(env)+"/"+string(p), func(t *testing.T) {
				s := Scenario{
					Workload:  CNNMNIST,
					Setting:   S3,
					Data:      NonIID50,
					Env:       env,
					Seed:      7,
					MaxRounds: 25,
				}
				cfg, err := s.simConfig()
				if err != nil {
					t.Fatal(err)
				}

				polFleet, err := s.policy(p)
				if err != nil {
					t.Fatal(err)
				}
				fleetRes := sim.New(cfg).Run(polFleet)

				pop, err := device.NewPopulation(
					device.DefaultHighCount, device.DefaultMidCount, device.DefaultLowCount)
				if err != nil {
					t.Fatal(err)
				}
				cfgPop := cfg
				cfgPop.Fleet = nil
				cfgPop.Population = pop
				polPop, err := s.policy(p)
				if err != nil {
					t.Fatal(err)
				}
				popRes := sim.New(cfgPop).Run(polPop)

				if !reflect.DeepEqual(fleetRes, popRes) {
					t.Errorf("population run diverges from fleet run under %s/%s", env, p)
				}
			})
		}
	}
}

// TestScaledFleetScenario drives the root-level population plumbing:
// a Scenario with a FleetSpec runs end to end in sampled mode, and its
// result is reproducible and shard-invariant through the public API.
func TestScaledFleetScenario(t *testing.T) {
	base := Scenario{
		Workload:  CNNMNIST,
		Setting:   S3,
		Data:      NonIID50,
		Env:       EnvField,
		Seed:      3,
		MaxRounds: 20,
		Fleet:     ScaledFleet(50_000, 1500),
	}
	r1, err := base.Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := base.Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("sampled scenario runs are not reproducible")
	}

	sharded := base
	f := *base.Fleet
	f.Shards = 2
	sharded.Fleet = &f
	r3, err := sharded.Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Error("shard count changed the scenario result")
	}
	if r1.Rounds != 20 {
		t.Errorf("executed %d rounds, want 20", r1.Rounds)
	}
}

// TestFleetSpecValidation: degenerate FleetSpecs surface as errors at
// Open/Run, not as engine panics.
func TestFleetSpecValidation(t *testing.T) {
	s := Scenario{Seed: 1, MaxRounds: 5, Fleet: &FleetSpec{High: 0, Mid: 0, Low: 0}}
	if _, err := s.Run(PolicyRandom); err == nil {
		t.Error("all-zero FleetSpec ran without error")
	}
	neg := Scenario{Seed: 1, MaxRounds: 5, Fleet: &FleetSpec{High: -3, Mid: 1, Low: 1}}
	if _, err := neg.Run(PolicyRandom); err == nil {
		t.Error("negative tier count ran without error")
	}
	tiny := Scenario{Seed: 1, MaxRounds: 5, Fleet: &FleetSpec{High: 1, Mid: 1, Low: 1, Sample: 3}}
	if _, err := tiny.Run(PolicyRandom); err == nil {
		t.Error("Sample below K ran without error")
	}
}
