package autofl

import (
	"autofl/internal/metrics"
	"autofl/internal/sim"
)

// RoundEvent is the per-round observation a Session delivers: what one
// completed aggregation round measured. Observers and early-stop
// predicates receive it, and Step returns it.
type RoundEvent struct {
	// Round is the 1-based index of the round that just completed.
	Round int
	// Accuracy is the global-model test accuracy after the round.
	Accuracy float64
	// RoundSec is the round's wall-clock duration.
	RoundSec float64
	// EnergyJ and ParticipantEnergyJ are the round's fleet-wide and
	// participants-only energies.
	EnergyJ            float64
	ParticipantEnergyJ float64
	// Participants counts selected devices; Kept the updates that
	// reached aggregation; Dropped the deadline-missing stragglers.
	Participants, Kept, Dropped int
	// VirtualSec is the virtual clock after the round: cumulative
	// round seconds since the run began.
	VirtualSec float64
	// Pending counts updates still in flight after the round's
	// aggregation, and MeanStaleness averages the staleness of the
	// updates it applied — both 0 under synchronous aggregation.
	Pending       int
	MeanStaleness float64
	// Reward is the AutoFL controller's mean per-round reward; 0 for
	// non-learning policies.
	Reward float64
	// BatteryAvailable and BatteryDepleted count the round's candidate
	// devices above the participation threshold and at zero charge;
	// BatteryMeanCharge is the candidates' mean state of charge in
	// [0, 1], and ParticipationJain is Jain's fairness index over
	// cumulative per-device participation. All zero for scenarios
	// without a battery model.
	BatteryAvailable  int
	BatteryDepleted   int
	BatteryMeanCharge float64
	ParticipationJain float64
	// Converged reports whether this round reached the accuracy
	// target (ending the run).
	Converged bool
}

// Session is an open, stepwise run of one Scenario under one Policy —
// the streaming form of Scenario.Run. Where Run executes the whole
// horizon and returns one final Report, a Session exposes the round
// as the unit of execution: callers Step it (or RunTo a round),
// observe every completed round through callbacks, stop it early with
// predicates, and take a Report at any point. Scenario.Run itself is
// a Session stepped to completion, so the two are byte-identical.
//
// A Session is not safe for concurrent use. It holds live simulator
// state; Close it (or just drop it) when done.
type Session struct {
	policy    Policy
	run       *sim.Run
	rewards   interface{ RewardTrace() []float64 }
	observers []func(RoundEvent)
	stops     []func(RoundEvent) bool
	stopped   bool
	closed    bool
}

// Open validates the scenario and policy and starts a session at
// round zero. Nothing executes until the first Step (or RunTo/Run)
// call.
func Open(s Scenario, p Policy) (*Session, error) {
	cfg, err := s.simConfig()
	if err != nil {
		return nil, err
	}
	pol, err := s.policy(p)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	sess := &Session{policy: p, run: eng.Start(pol)}
	sess.rewards, _ = pol.(interface{ RewardTrace() []float64 })
	return sess, nil
}

// Observe registers a per-round callback, invoked after every
// executed round (in registration order) with that round's event.
func (s *Session) Observe(fn func(RoundEvent)) {
	s.observers = append(s.observers, fn)
}

// StopWhen registers an early-stop predicate: when it returns true
// for a round's event, the session stops after that round — Step
// reports done and the Report covers the executed prefix, exactly as
// if the horizon had been bounded there.
func (s *Session) StopWhen(pred func(RoundEvent) bool) {
	s.stops = append(s.stops, pred)
}

// Step executes one aggregation round and returns its event. It
// reports false — executing nothing — once the session is done:
// target reached, horizon exhausted, an early-stop predicate fired,
// or the session closed. Steady-state Step performs no allocation.
func (s *Session) Step() (RoundEvent, bool) {
	if s.closed || s.stopped || !s.run.Step() {
		return RoundEvent{}, false
	}
	info := s.run.Last()
	ev := RoundEvent{
		Round:              info.Round,
		Accuracy:           info.Accuracy,
		RoundSec:           info.RoundSec,
		EnergyJ:            info.EnergyJ,
		ParticipantEnergyJ: info.ParticipantEnergyJ,
		Participants:       info.Participants,
		Kept:               info.Kept,
		Dropped:            info.Dropped,
		VirtualSec:         info.VirtualSec,
		Pending:            info.Pending,
		MeanStaleness:      info.MeanStaleness,
		BatteryAvailable:   info.BatteryAvailable,
		BatteryDepleted:    info.BatteryDepleted,
		BatteryMeanCharge:  info.BatteryMeanCharge,
		ParticipationJain:  info.ParticipationJain,
		Converged:          info.Converged,
	}
	if s.rewards != nil {
		if tr := s.rewards.RewardTrace(); len(tr) > 0 {
			ev.Reward = tr[len(tr)-1]
		}
	}
	for _, fn := range s.observers {
		fn(ev)
	}
	for _, pred := range s.stops {
		if pred(ev) {
			s.stopped = true
			break
		}
	}
	return ev, true
}

// RunTo steps until the session has executed the given number of
// rounds (or finished earlier) and returns the report as of that
// point.
func (s *Session) RunTo(round int) *Report {
	for s.run.Rounds() < round {
		if _, ok := s.Step(); !ok {
			break
		}
	}
	return s.Result()
}

// Run steps the session to its natural end — convergence, the
// scenario horizon, or an early-stop — and returns the final report.
func (s *Session) Run() *Report {
	for {
		if _, ok := s.Step(); !ok {
			break
		}
	}
	return s.Result()
}

// Rounds is the number of rounds executed so far.
func (s *Session) Rounds() int { return s.run.Rounds() }

// Done reports whether the session will execute no further rounds.
func (s *Session) Done() bool { return s.closed || s.stopped || s.run.Done() }

// Result returns the report as of the rounds executed so far: for a
// finished session the final report (identical to Scenario.Run's),
// mid-run a consistent snapshot of the executed prefix. It may be
// called repeatedly, before and after Close.
func (s *Session) Result() *Report {
	res := s.run.Snapshot()
	return reportFromResult(s.policy, &res)
}

// FleetEnergyPercentiles streams the population's per-device
// cumulative-energy distribution — as of the rounds executed so far —
// through O(1)-memory quantile estimators, returning one estimate per
// requested probability (each in (0, 1)). The device snapshots are
// O(1) each, so the whole call is one linear pass with no per-device
// materialization even at millions of devices. ok is false for
// scenarios without a sampled population fleet (the exhaustive paths
// do not keep packed per-device accumulators).
func (s *Session) FleetEnergyPercentiles(ps ...float64) ([]float64, bool) {
	n := s.run.PopulationLen()
	if n == 0 || len(ps) == 0 {
		return nil, false
	}
	qs := metrics.NewQuantiles(ps...)
	for i := 0; i < n; i++ {
		if _, _, energyJ, ok := s.run.DeviceSnapshot(i); ok {
			qs.Add(energyJ)
		}
	}
	return qs.Values(), true
}

// Close ends the session: subsequent Step calls execute nothing.
// Result remains available.
func (s *Session) Close() {
	s.closed = true
}

// simResult finishes the run and exposes the engine-level result —
// including the per-round trace — to the traced sweep runner.
func (s *Session) simResult() *sim.Result {
	s.closed = true
	return s.run.Result()
}
