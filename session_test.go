package autofl

import (
	"reflect"
	"testing"
)

// sessionScenario is a fast field-conditions scenario for Session
// tests.
func sessionScenario(env Environment, data DataScenario) Scenario {
	return Scenario{
		Workload:  CNNMNIST,
		Setting:   S3,
		Data:      data,
		Env:       env,
		Seed:      17,
		MaxRounds: 120,
	}
}

// TestSessionReproducesRun is the tentpole equivalence bar: a Session
// stepped to completion reproduces Scenario.Run's report exactly —
// across the four §5.1 policy families and all four variance
// environments.
func TestSessionReproducesRun(t *testing.T) {
	policies := []Policy{PolicyRandom, PolicyPerformance, PolicyAutoFL, PolicyOFL}
	for _, env := range Environments() {
		for _, p := range policies {
			s := sessionScenario(env, NonIID50)
			batch, err := s.Run(p)
			if err != nil {
				t.Fatal(err)
			}

			sess, err := Open(s, p)
			if err != nil {
				t.Fatal(err)
			}
			steps := 0
			for {
				if _, ok := sess.Step(); !ok {
					break
				}
				steps++
			}
			streamed := sess.Result()
			sess.Close()

			if steps != batch.Rounds {
				t.Errorf("%s/%s: session stepped %d rounds, Run executed %d", env, p, steps, batch.Rounds)
			}
			if !reflect.DeepEqual(batch, streamed) {
				t.Errorf("%s/%s: session report differs from Scenario.Run\nrun:     %+v\nsession: %+v", env, p, batch, streamed)
			}
		}
	}
}

// TestSessionObservers checks every round is observed exactly once, in
// order, and that the observed per-round measurements sum to the
// report's aggregates bit-for-bit.
func TestSessionObservers(t *testing.T) {
	s := sessionScenario(EnvField, NonIID50)
	sess, err := Open(s, PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	var events []RoundEvent
	sess.Observe(func(ev RoundEvent) { events = append(events, ev) })
	order := 0
	sess.Observe(func(ev RoundEvent) { order++ }) // second observer runs too
	rep := sess.Run()

	if len(events) != rep.Rounds || order != rep.Rounds {
		t.Fatalf("observed %d/%d events for %d rounds", len(events), order, rep.Rounds)
	}
	var sec, energy float64
	sawReward := false
	for i, ev := range events {
		if ev.Round != i+1 {
			t.Fatalf("event %d has round %d", i, ev.Round)
		}
		if ev.Accuracy != rep.AccuracyTrace[i] {
			t.Fatalf("round %d: observed accuracy %v != trace %v", ev.Round, ev.Accuracy, rep.AccuracyTrace[i])
		}
		if ev.Reward != 0 {
			sawReward = true
		}
		if ev.Participants == 0 || ev.Kept > ev.Participants {
			t.Fatalf("round %d: implausible participation %+v", ev.Round, ev)
		}
		sec += ev.RoundSec
		energy += ev.EnergyJ
	}
	if sec != rep.TimeToTargetSec || energy != rep.EnergyToTargetJ {
		t.Error("observed per-round sums differ from the report's aggregates")
	}
	if !sawReward {
		t.Error("AutoFL session never delivered a reward")
	}
	if last := events[len(events)-1]; rep.Converged != last.Converged {
		t.Errorf("final event converged=%v, report converged=%v", last.Converged, rep.Converged)
	}
}

// TestSessionRunToAndStopWhen checks bounded stepping and early-stop
// predicates: both end the session with a report covering exactly the
// executed prefix.
func TestSessionRunToAndStopWhen(t *testing.T) {
	s := sessionScenario(EnvField, NonIID100) // never converges under Random
	sess, err := Open(s, PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	rep := sess.RunTo(30)
	if sess.Rounds() != 30 || rep.Rounds != 30 {
		t.Fatalf("RunTo(30) left the session at round %d (report %d)", sess.Rounds(), rep.Rounds)
	}
	if sess.Done() {
		t.Error("session done after RunTo short of the horizon")
	}
	// RunTo to a round already passed is a no-op.
	if rep := sess.RunTo(10); rep.Rounds != 30 {
		t.Errorf("RunTo(10) after round 30 reported %d rounds", rep.Rounds)
	}

	// A mid-run report equals a run bounded at the same horizon.
	bounded := s
	bounded.MaxRounds = 30
	ref, err := bounded.Run(PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	got := sess.Result()
	if got.Rounds != ref.Rounds || got.EnergyToTargetJ != ref.EnergyToTargetJ ||
		got.FinalAccuracy != ref.FinalAccuracy || got.TimeToTargetSec != ref.TimeToTargetSec {
		t.Errorf("mid-run report differs from a 30-round bounded run:\nsession: %+v\nbounded: %+v", got, ref)
	}

	// Early stop: the predicate ends the run after its round.
	stopped, err := Open(s, PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	stopped.StopWhen(func(ev RoundEvent) bool { return ev.Round >= 12 })
	rep = stopped.Run()
	if rep.Rounds != 12 {
		t.Errorf("StopWhen(round 12) ran %d rounds", rep.Rounds)
	}
	if !stopped.Done() {
		t.Error("stopped session not done")
	}
	if _, ok := stopped.Step(); ok {
		t.Error("Step executed after an early stop")
	}

	// Close ends stepping; Result stays available.
	closed, err := Open(s, PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	closed.RunTo(5)
	closed.Close()
	if _, ok := closed.Step(); ok {
		t.Error("Step executed after Close")
	}
	if rep := closed.Result(); rep.Rounds != 5 {
		t.Errorf("post-Close report rounds = %d, want 5", rep.Rounds)
	}
}

// TestSessionOpenValidates pins validation at Open time, before any
// round executes.
func TestSessionOpenValidates(t *testing.T) {
	if _, err := Open(Scenario{Workload: "nope"}, PolicyRandom); err == nil {
		t.Error("bad workload should fail Open")
	}
	if _, err := Open(sessionScenario(EnvIdeal, IdealIID), "NotAPolicy"); err == nil {
		t.Error("bad policy should fail Open")
	}
}

// TestSessionStepAllocFree pins the PR 3 zero-alloc guarantee through
// the new streaming API: once warm, a Session.Step — one full
// aggregation round, policy decision, feedback, observers, event
// delivery — performs zero steady-state allocations for the learning
// controller and the planning oracle.
func TestSessionStepAllocFree(t *testing.T) {
	for _, p := range []Policy{PolicyAutoFL, PolicyOParticipant} {
		s := Scenario{
			Workload:  CNNMNIST,
			Setting:   S3,
			Data:      NonIID100, // stalls below target: the horizon never ends the run early
			Env:       EnvField,
			Seed:      5,
			MaxRounds: 600,
		}
		sess, err := Open(s, p)
		if err != nil {
			t.Fatal(err)
		}
		sess.Observe(func(RoundEvent) {}) // observer delivery must be free too
		// Warm up: materialize agents, Q-table rows, and round buffers.
		for sess.Rounds() < 100 {
			if _, ok := sess.Step(); !ok {
				t.Fatalf("%s: run ended during warmup", p)
			}
		}
		if avg := testing.AllocsPerRun(200, func() { sess.Step() }); avg != 0 {
			t.Errorf("%s: steady-state Session.Step allocated %.2f/run, want 0", p, avg)
		}
	}
}
