package autofl

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"autofl/internal/sweep"
	"autofl/internal/sweep/dist"
	"autofl/internal/sweep/svc"
)

// TestSweepServiceEndToEnd is the control-plane acceptance criterion
// over real Scenario runs: a daemon with two registered workers serves
// a submitted grid whose JSON result is byte-identical to a serial
// local run, and a second overlapping submission is served from the
// shared cache — > 0 hits, 0 duplicate cell executions.
func TestSweepServiceEndToEnd(t *testing.T) {
	g := smallGrid(42)
	const rounds = 25
	serial, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serial.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	reg := svc.NewRegistry()
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{"w1", "w2"} {
		w, err := dist.NewDialWorker(name, 2, SweepRunners)
		if err != nil {
			t.Fatal(err)
		}
		go w.Register(context.Background(), regAddr, dist.RegisterOptions{MinBackoff: 5 * time.Millisecond})
		defer w.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered (have %d)", reg.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}

	service, err := svc.New(svc.Config{Runners: SweepRunners, Registry: reg, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer service.Close()
	srv := httptest.NewServer(service.Handler())
	defer srv.Close()
	client := &svc.Client{BaseURL: srv.URL, HTTP: srv.Client()}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := client.Submit(ctx, svc.JobSpec{Grid: g, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != svc.StateDone {
		t.Fatalf("job 1 = %+v", final)
	}
	executed := 0
	for _, n := range final.Workers {
		executed += n
	}
	if executed != g.Size() {
		t.Errorf("job 1 executed %d cells on workers, want %d", executed, g.Size())
	}
	got, err := client.Result(ctx, st.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("daemon result differs from serial local run")
	}

	// Second client, overlapping grid (a superset: one more policy).
	// Every cell of the first grid must come from the cache, and only
	// the new policy's cells execute.
	g2 := g
	g2.Policies = append(append([]string(nil), g.Policies...), string(PolicyAutoFL))
	serial2, err := RunSweep(context.Background(), g2, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want2 bytes.Buffer
	if err := serial2.WriteJSON(&want2); err != nil {
		t.Fatal(err)
	}
	st2, err := client.Submit(ctx, svc.JobSpec{Grid: g2, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := client.Wait(ctx, st2.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != svc.StateDone {
		t.Fatalf("job 2 = %+v", final2)
	}
	if final2.CacheHits != g.Size() {
		t.Errorf("job 2 cache hits = %d, want the full %d-cell overlap", final2.CacheHits, g.Size())
	}
	executed2 := 0
	for _, n := range final2.Workers {
		executed2 += n
	}
	if executed2 != g2.Size()-g.Size() {
		t.Errorf("job 2 executed %d cells, want only the %d non-overlapping ones",
			executed2, g2.Size()-g.Size())
	}
	got2, err := client.Result(ctx, st2.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want2.Bytes()) {
		t.Error("overlapping submission differs from a cold serial run")
	}
}
