package autofl

import (
	"context"

	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/schedule"
)

// SweepGrid declares the paper's full evaluation grid — every
// workload, Table 5 setting, data scenario, variance environment, and
// §5.1/§6.3 policy — replicated the given number of times. Callers
// narrow the axes before running when they want a slice of it.
func SweepGrid(seed uint64, replicates int) sweep.Grid {
	g := sweep.Grid{Seed: seed, Replicates: replicates}
	for _, w := range Workloads() {
		g.Workloads = append(g.Workloads, string(w))
	}
	for _, s := range Settings() {
		g.Settings = append(g.Settings, string(s))
	}
	for _, d := range DataScenarios() {
		g.Data = append(g.Data, string(d))
	}
	for _, e := range Environments() {
		g.Envs = append(g.Envs, string(e))
	}
	for _, p := range Policies() {
		g.Policies = append(g.Policies, string(p))
	}
	return g
}

// SweepRunner adapts Scenario.Run to the sweep engine: each cell's
// axis names select the scenario, the engine-derived seed replaces the
// scenario seed, and the report's headline metrics become the cell
// outcome. maxRounds bounds every run (0 selects the paper's
// 1000-round horizon). The returned runner is safe for concurrent use:
// every call constructs its own scenario, policy, and simulator.
func SweepRunner(maxRounds int) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		if err := ctx.Err(); err != nil {
			return sweep.Outcome{}, err
		}
		s := Scenario{
			Workload:  Workload(c.Workload),
			Setting:   Setting(c.Setting),
			Data:      DataScenario(c.Data),
			Env:       Environment(c.Env),
			Seed:      seed,
			MaxRounds: maxRounds,
		}
		r, err := s.Run(Policy(c.Policy))
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{
			Converged:       r.Converged,
			Rounds:          r.Rounds,
			TimeToTargetSec: r.TimeToTargetSec,
			EnergyToTargetJ: r.EnergyToTargetJ,
			GlobalPPW:       r.GlobalPPW,
			LocalPPW:        r.LocalPPW,
			FinalAccuracy:   r.FinalAccuracy,
		}, nil
	}
}

// RunSweep executes the grid through Scenario.Run on a worker pool
// (see sweep.Run for the execution contract). It is the programmatic
// face of cmd/autofl-sweep; RunSweepWith adds caching and scheduling.
func RunSweep(ctx context.Context, g sweep.Grid, maxRounds int, opts sweep.Options) (*sweep.ResultStore, error) {
	return RunSweepWith(ctx, g, SweepOptions{MaxRounds: maxRounds, Options: opts})
}

// SweepOptions extends the engine options with the persistence and
// scheduling layers of cmd/autofl-sweep.
type SweepOptions struct {
	sweep.Options
	// MaxRounds bounds every run (0 selects the paper's 1000-round
	// horizon).
	MaxRounds int
	// Cache, when non-nil, serves previously completed cells from disk
	// and records newly executed ones, so an interrupted or extended
	// grid re-runs only its missing cells. The cache must have been
	// opened with SweepSignature of the same grid and horizon;
	// mismatched signatures simply never hit.
	Cache *cache.Cache
	// CostSchedule claims pending cells in descending predicted-cost
	// order (calibrated from the cache's wall-clock observations when
	// available, FLOPs priors otherwise), with already-cached cells
	// priced at zero so real work drains first. Output is identical to
	// FIFO; only tail latency changes. Ignored when Options.Order is
	// already set.
	CostSchedule bool
}

// SweepSignature is the cache identity of a (grid, horizon) pair: the
// grid master seed plus the effective round horizon, normalized so the
// default (0) and an explicit 1000 share cache entries.
func SweepSignature(g sweep.Grid, maxRounds int) cache.Signature {
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	return cache.Signature{GridSeed: g.Seed, Rounds: maxRounds}
}

// RunSweepWith executes the grid with optional result caching and
// cost-ordered scheduling layered over the engine. Whatever the cache
// state or claim order, the exported JSON/CSV is byte-identical to a
// cold serial run of the same grid and seed.
func RunSweepWith(ctx context.Context, g sweep.Grid, o SweepOptions) (*sweep.ResultStore, error) {
	run := SweepRunner(o.MaxRounds)
	opts := o.Options
	if o.Cache != nil {
		run = o.Cache.Runner(run)
	}
	if o.CostSchedule && opts.Order == nil {
		model := schedule.Static()
		if o.Cache != nil {
			if obs := cacheObservations(o.Cache); len(obs) > 0 {
				model = schedule.Calibrate(obs)
			}
		}
		rounds := SweepSignature(g, o.MaxRounds).Rounds
		cells := g.Cells()
		opts.Order = schedule.Order(len(cells), func(i int) float64 {
			if o.Cache != nil && o.Cache.Has(cells[i]) {
				return 0
			}
			return model.Predict(cells[i].Workload, rounds)
		})
	}
	return sweep.Run(ctx, g, run, opts)
}

// cacheObservations converts the cache's entries into the scheduler's
// calibration samples.
func cacheObservations(c *cache.Cache) []schedule.Observation {
	entries := c.Entries()
	obs := make([]schedule.Observation, 0, len(entries))
	for _, e := range entries {
		obs = append(obs, schedule.Observation{
			Workload: e.Result.Cell.Workload,
			Rounds:   c.Signature().Rounds,
			Seconds:  e.WallSeconds,
		})
	}
	return obs
}
