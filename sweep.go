package autofl

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/dist"
	"autofl/internal/sweep/schedule"
)

// SweepGrid declares the paper's full evaluation grid — every
// workload, Table 5 setting, data scenario, variance environment, and
// §5.1/§6.3 policy — replicated the given number of times. Callers
// narrow the axes before running when they want a slice of it.
func SweepGrid(seed uint64, replicates int) sweep.Grid {
	g := sweep.Grid{Seed: seed, Replicates: replicates}
	for _, w := range Workloads() {
		g.Workloads = append(g.Workloads, string(w))
	}
	for _, s := range Settings() {
		g.Settings = append(g.Settings, string(s))
	}
	for _, d := range DataScenarios() {
		g.Data = append(g.Data, string(d))
	}
	for _, e := range Environments() {
		g.Envs = append(g.Envs, string(e))
	}
	for _, p := range Policies() {
		g.Policies = append(g.Policies, string(p))
	}
	return g
}

// sweepCell executes one grid cell: the cell's axis names select the
// scenario, the engine-derived seed replaces the scenario seed, and
// the run's headline metrics become the cell outcome. When traced,
// the outcome also carries the per-round sweep.RunTrace payload for
// the cache's horizon-prefix serving. Safe for concurrent use: every
// call constructs its own scenario, policy, and simulator.
func sweepCell(ctx context.Context, c sweep.Cell, seed uint64, maxRounds int, traced bool) (sweep.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return sweep.Outcome{}, err
	}
	s := Scenario{
		Workload:  Workload(c.Workload),
		Setting:   Setting(c.Setting),
		Data:      DataScenario(c.Data),
		Env:       Environment(c.Env),
		Seed:      seed,
		MaxRounds: maxRounds,
	}
	if c.Mode != "" || c.Alpha != "" {
		spec := &AggregationSpec{Mode: AggregationMode(c.Mode)}
		if c.Alpha != "" {
			a, err := strconv.ParseFloat(c.Alpha, 64)
			if err != nil {
				return sweep.Outcome{}, fmt.Errorf("autofl: cell alpha %q: %w", c.Alpha, err)
			}
			spec.StalenessAlpha = a
		}
		s.Aggregation = spec
	}
	if c.Sample != "" && c.Devices == "" {
		return sweep.Outcome{}, fmt.Errorf("autofl: cell sample %q without a devices axis", c.Sample)
	}
	if c.Devices != "" {
		n, err := strconv.Atoi(c.Devices)
		if err != nil {
			return sweep.Outcome{}, fmt.Errorf("autofl: cell devices %q: %w", c.Devices, err)
		}
		sample := 0
		if c.Sample != "" {
			if sample, err = strconv.Atoi(c.Sample); err != nil {
				return sweep.Outcome{}, fmt.Errorf("autofl: cell sample %q: %w", c.Sample, err)
			}
		}
		s.Fleet = ScaledFleet(n, sample)
	}
	if c.Battery != "" {
		s.Battery = DefaultBattery(BatteryProfile(c.Battery))
	}
	pol := Policy(c.Policy)
	if c.Selection != "" {
		// The selection axis replaces the policy axis for the cell: a
		// cell naming both is ambiguous about which picks participants.
		if c.Policy != "" {
			return sweep.Outcome{}, fmt.Errorf(
				"autofl: cell selection %q conflicts with policy %q: the axes are mutually exclusive", c.Selection, c.Policy)
		}
		var err error
		if pol, err = SelectionPolicy(c.Selection); err != nil {
			return sweep.Outcome{}, err
		}
	}
	sess, err := Open(s, pol)
	if err != nil {
		return sweep.Outcome{}, err
	}
	for {
		if _, ok := sess.Step(); !ok {
			break
		}
	}
	res := sess.simResult()
	out := sweep.Outcome{
		Converged:       res.Converged,
		Rounds:          res.Rounds,
		TimeToTargetSec: res.TimeToTargetSec,
		EnergyToTargetJ: res.EnergyToTargetJ,
		GlobalPPW:       res.GlobalPPW(),
		LocalPPW:        res.LocalPPW(),
		FinalAccuracy:   res.FinalAccuracy,
		MeanStaleness:   res.MeanStaleness,
	}
	if res.Battery != nil {
		out.ParticipationJain = res.Battery.ParticipationJain
		out.BatteryMeanFrac = res.Battery.MeanFrac
	}
	if traced {
		out.Trace = sweep.NewRunTrace(res)
	}
	return out, nil
}

// SweepRunner adapts scenario runs to the sweep engine (see
// sweepCell). maxRounds bounds every run (0 selects the paper's
// 1000-round horizon).
func SweepRunner(maxRounds int) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		return sweepCell(ctx, c, seed, maxRounds, false)
	}
}

// TracedSweepRunner is SweepRunner with per-round trace capture, so
// the cache can serve any shorter horizon from the entry. The trace
// never reaches sweep output — cache.Runner (or the distributed
// coordinator's commit path) strips it after recording. Sweep worker
// processes use it to serve traced jobs for cache-backed coordinators
// (see cmd/autofl-sweep -worker).
func TracedSweepRunner(maxRounds int) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		return sweepCell(ctx, c, seed, maxRounds, true)
	}
}

// SweepRunners is the dist.RunnerFor bridge: it maps a job's (rounds,
// traced) parameters to the scenario runner executing it — the single
// wiring point between the scenario layer and every cell server
// (cmd/autofl-sweep -worker/-register) and control-plane daemon
// (cmd/autofl-sweepd), which cannot be reached from internal packages
// without an import cycle.
func SweepRunners(rounds int, traced bool) sweep.Runner {
	if traced {
		return TracedSweepRunner(rounds)
	}
	return SweepRunner(rounds)
}

// RunSweep executes the grid through Scenario.Run on a worker pool
// (see sweep.Run for the execution contract). It is the programmatic
// face of cmd/autofl-sweep; RunSweepWith adds caching and scheduling.
func RunSweep(ctx context.Context, g sweep.Grid, maxRounds int, opts sweep.Options) (*sweep.ResultStore, error) {
	return RunSweepWith(ctx, g, SweepOptions{MaxRounds: maxRounds, Options: opts})
}

// SweepOptions extends the engine options with the persistence and
// scheduling layers of cmd/autofl-sweep.
type SweepOptions struct {
	sweep.Options
	// MaxRounds bounds every run (0 selects the paper's 1000-round
	// horizon).
	MaxRounds int
	// Cache, when non-nil, serves previously completed cells from disk
	// and records newly executed ones (with per-round traces), so an
	// interrupted or extended grid re-runs only its missing cells and
	// a shorter-horizon request is answered by truncating longer
	// cached runs. The cache must have been opened with SweepSignature
	// of the same grid and horizon; a different grid seed simply never
	// hits.
	Cache *cache.Cache
	// CostSchedule claims pending cells in descending predicted-cost
	// order (calibrated from the cache's wall-clock observations when
	// available, FLOPs priors otherwise), with already-cached cells
	// priced at zero so real work drains first. Output is identical to
	// FIFO; only tail latency changes. Ignored when Options.Order is
	// already set.
	CostSchedule bool
	// Workers, when non-empty, farms every cell to autofl-sweep worker
	// processes at these addresses (see cmd/autofl-sweep -worker)
	// instead of executing in-process: RunSweepWith installs a
	// dist.RemoteExecutor and forbids local execution, so a distributed
	// run either computes every cell remotely (byte-identical to a
	// local run, by per-cell seed derivation) or surfaces the failure.
	// Cache and CostSchedule compose unchanged — hits are served
	// locally by the coordinator, misses ship to workers, and remote
	// results commit back into the cache by digest. Mutually exclusive
	// with an explicit Options.Executor.
	Workers []string
	// WorkerCells, when non-nil, is filled after the run with the
	// number of cells each worker completed, keyed by address — the
	// per-worker audit trail of cmd/autofl-sweep's final stats line.
	// Only meaningful with Workers.
	WorkerCells map[string]int
	// CellTimeout and RetryBudget tune the distributed executor's
	// failure containment: CellTimeout bounds one cell's remote
	// execution (0 = unbounded), and RetryBudget bounds how many times
	// a faulted cell is re-queued before it is quarantined with an
	// explicit per-cell error (0 selects the dist default, negative
	// quarantines on the first fault). Only meaningful with Workers.
	CellTimeout time.Duration
	RetryBudget int
	// Faults, when non-nil, is filled after the run with the executor's
	// fault audit trail. Only meaningful with Workers.
	Faults *SweepFaults
}

// SweepFaults is the distributed executor's fault audit trail for one
// run: cells re-queued after worker failures and cells quarantined
// past the retry budget (each quarantined cell also appears in the
// store as a result with a per-cell error).
type SweepFaults struct {
	Requeues    int
	Quarantined int
}

// SweepSignature is the cache signature of a (grid, horizon) pair:
// the grid master seed (the entry identity) plus the effective round
// horizon (how entries are served), normalized so the default (0) and
// an explicit 1000 behave identically. Only the seed keys entries —
// one directory serves every horizon, with shorter requests answered
// from longer cached runs by trace-prefix replay.
func SweepSignature(g sweep.Grid, maxRounds int) cache.Signature {
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	return cache.Signature{GridSeed: g.Seed, Rounds: maxRounds}
}

// RunSweepWith executes the grid with optional result caching,
// cost-ordered scheduling, and distributed execution layered over the
// engine. Whatever the cache state, claim order, or cell placement,
// the exported JSON/CSV is byte-identical to a cold serial run of the
// same grid and seed.
func RunSweepWith(ctx context.Context, g sweep.Grid, o SweepOptions) (*sweep.ResultStore, error) {
	run := SweepRunner(o.MaxRounds)
	opts := o.Options
	if o.Cache != nil {
		// A cache opened under a different grid seed or horizon than
		// this sweep would record entries under the wrong identity;
		// fail fast instead of quietly polluting the store.
		if want := SweepSignature(g, o.MaxRounds); o.Cache.Signature() != want {
			return sweep.NewStore(), fmt.Errorf(
				"autofl: cache signature %+v does not match sweep signature %+v", o.Cache.Signature(), want)
		}
	}
	var remote *dist.RemoteExecutor
	switch {
	case len(o.Workers) > 0:
		if opts.Executor != nil {
			return sweep.NewStore(), errors.New("autofl: Workers and an explicit Executor are mutually exclusive")
		}
		// The coordinator serves cache hits itself and commits remote
		// results by digest, so the runner must never execute: a guard
		// turns any local fallback into a loud per-cell error (which
		// also breaks byte-identity, so tests catch it structurally).
		remote = &dist.RemoteExecutor{
			Addrs:       o.Workers,
			Rounds:      SweepSignature(g, o.MaxRounds).Rounds,
			Traced:      o.Cache != nil,
			Cache:       o.Cache,
			CellTimeout: o.CellTimeout,
			RetryBudget: o.RetryBudget,
		}
		opts.Executor = remote
		run = func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			return sweep.Outcome{}, errors.New("autofl: distributed sweep attempted local execution")
		}
	case o.Cache != nil:
		// Cached sweeps capture per-round traces so the entries can
		// serve shorter horizons later; the cache strips the trace
		// before outcomes reach the store, so output is identical to
		// the cache-free runner's.
		run = o.Cache.Runner(TracedSweepRunner(o.MaxRounds))
	}
	if o.CostSchedule && opts.Order == nil {
		model := schedule.Static()
		if o.Cache != nil {
			if obs := cacheObservations(o.Cache); len(obs) > 0 {
				model = schedule.Calibrate(obs)
			}
		}
		rounds := SweepSignature(g, o.MaxRounds).Rounds
		cells := g.Cells()
		opts.Order = schedule.Order(len(cells), func(i int) float64 {
			if o.Cache != nil && o.Cache.Has(cells[i]) {
				return 0
			}
			return model.Predict(cells[i].Workload, rounds)
		})
	}
	store, err := sweep.Run(ctx, g, run, opts)
	if remote != nil && o.WorkerCells != nil {
		for addr, n := range remote.Counts() {
			o.WorkerCells[addr] = n
		}
	}
	if remote != nil && o.Faults != nil {
		o.Faults.Requeues = remote.Requeues()
		o.Faults.Quarantined = remote.Quarantined()
	}
	return store, err
}

// cacheObservations converts the cache's entries into the scheduler's
// calibration samples.
func cacheObservations(c *cache.Cache) []schedule.Observation {
	entries := c.Entries()
	obs := make([]schedule.Observation, 0, len(entries))
	for _, e := range entries {
		obs = append(obs, schedule.Observation{
			Workload: e.Result.Cell.Workload,
			Rounds:   e.Rounds,
			Seconds:  e.WallSeconds,
		})
	}
	return obs
}
