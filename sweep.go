package autofl

import (
	"context"

	"autofl/internal/sweep"
)

// SweepGrid declares the paper's full evaluation grid — every
// workload, Table 5 setting, data scenario, variance environment, and
// §5.1/§6.3 policy — replicated the given number of times. Callers
// narrow the axes before running when they want a slice of it.
func SweepGrid(seed uint64, replicates int) sweep.Grid {
	g := sweep.Grid{Seed: seed, Replicates: replicates}
	for _, w := range Workloads() {
		g.Workloads = append(g.Workloads, string(w))
	}
	for _, s := range Settings() {
		g.Settings = append(g.Settings, string(s))
	}
	for _, d := range DataScenarios() {
		g.Data = append(g.Data, string(d))
	}
	for _, e := range Environments() {
		g.Envs = append(g.Envs, string(e))
	}
	for _, p := range Policies() {
		g.Policies = append(g.Policies, string(p))
	}
	return g
}

// SweepRunner adapts Scenario.Run to the sweep engine: each cell's
// axis names select the scenario, the engine-derived seed replaces the
// scenario seed, and the report's headline metrics become the cell
// outcome. maxRounds bounds every run (0 selects the paper's
// 1000-round horizon). The returned runner is safe for concurrent use:
// every call constructs its own scenario, policy, and simulator.
func SweepRunner(maxRounds int) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		if err := ctx.Err(); err != nil {
			return sweep.Outcome{}, err
		}
		s := Scenario{
			Workload:  Workload(c.Workload),
			Setting:   Setting(c.Setting),
			Data:      DataScenario(c.Data),
			Env:       Environment(c.Env),
			Seed:      seed,
			MaxRounds: maxRounds,
		}
		r, err := s.Run(Policy(c.Policy))
		if err != nil {
			return sweep.Outcome{}, err
		}
		return sweep.Outcome{
			Converged:       r.Converged,
			Rounds:          r.Rounds,
			TimeToTargetSec: r.TimeToTargetSec,
			EnergyToTargetJ: r.EnergyToTargetJ,
			GlobalPPW:       r.GlobalPPW,
			LocalPPW:        r.LocalPPW,
			FinalAccuracy:   r.FinalAccuracy,
		}, nil
	}
}

// RunSweep executes the grid through Scenario.Run on a worker pool
// (see sweep.Run for the execution contract). It is the programmatic
// face of cmd/autofl-sweep.
func RunSweep(ctx context.Context, g sweep.Grid, maxRounds int, opts sweep.Options) (*sweep.ResultStore, error) {
	return sweep.Run(ctx, g, SweepRunner(maxRounds), opts)
}
