package autofl

import (
	"bytes"
	"context"
	"testing"

	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/dist"
)

// smallGrid is a fast slice of the evaluation grid for end-to-end
// tests: 2 envs × 2 policies on CNN-MNIST/S3/IID.
func smallGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Workloads: []string{string(CNNMNIST)},
		Settings:  []string{string(S3)},
		Data:      []string{string(IdealIID)},
		Envs:      []string{string(EnvIdeal), string(EnvField)},
		Policies:  []string{string(PolicyRandom), string(PolicyPerformance)},
		Seed:      seed,
	}
}

// TestRunSweepDeterminism checks the acceptance bar end to end: a
// parallel sweep over real Scenario runs emits byte-identical sorted
// JSON to a -parallel=1 sweep at the same grid seed.
func TestRunSweepDeterminism(t *testing.T) {
	g := smallGrid(42)
	const rounds = 25
	serial, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel sweep JSON differs from serial at the same seed")
	}
	for _, r := range serial.Results() {
		if r.Err != "" {
			t.Errorf("cell %s failed: %s", r.Cell.Key(), r.Err)
		}
		if r.Outcome.Rounds == 0 {
			t.Errorf("cell %s ran no rounds", r.Cell.Key())
		}
	}
}

// TestRunSweepWithCacheAndSchedule is the acceptance criterion end to
// end on real Scenario runs: a finished-grid rerun against its cache
// executes zero cells and emits byte-identical JSON/CSV to the cold
// run, and extending the grid by one axis value executes only the new
// cells — all under the cost scheduler.
func TestRunSweepWithCacheAndSchedule(t *testing.T) {
	g := smallGrid(42)
	const rounds = 25
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := cache.Open(dir, SweepSignature(g, rounds))
	if err != nil {
		t.Fatal(err)
	}
	coldStore, err := RunSweepWith(ctx, g, SweepOptions{
		MaxRounds: rounds, Cache: cold, CostSchedule: true,
		Options: sweep.Options{Parallel: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != g.Size() {
		t.Fatalf("cold stats = %+v, want %d misses", st, g.Size())
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := cache.Open(dir, SweepSignature(g, rounds))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmStore, err := RunSweepWith(ctx, g, SweepOptions{
		MaxRounds: rounds, Cache: warm, CostSchedule: true,
		Options: sweep.Options{Parallel: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Fatalf("warm rerun executed cells: stats = %+v", st)
	}
	var cj, wj, cc, wc bytes.Buffer
	if err := coldStore.WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if err := warmStore.WriteJSON(&wj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj.Bytes(), wj.Bytes()) {
		t.Error("warm JSON differs from cold JSON")
	}
	if err := coldStore.WriteCSV(&cc); err != nil {
		t.Fatal(err)
	}
	if err := warmStore.WriteCSV(&wc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cc.Bytes(), wc.Bytes()) {
		t.Error("warm CSV differs from cold CSV")
	}

	// Extend the policy axis by one value: only the new cells execute.
	ext := g
	ext.Policies = append(append([]string{}, g.Policies...), string(PolicyPower))
	extStore, err := RunSweepWith(ctx, ext, SweepOptions{
		MaxRounds: rounds, Cache: warm, CostSchedule: true,
		Options: sweep.Options{Parallel: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantNew := ext.Size() - g.Size()
	if st := warm.Stats(); st.Misses != wantNew {
		t.Errorf("extension executed %d cells, want %d", st.Misses, wantNew)
	}
	if extStore.Len() != ext.Size() {
		t.Errorf("extension stored %d of %d cells", extStore.Len(), ext.Size())
	}

	// The extended cached output equals a cache-free serial run.
	fresh, err := RunSweep(ctx, ext, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ej, fj bytes.Buffer
	if err := extStore.WriteJSON(&ej); err != nil {
		t.Fatal(err)
	}
	if err := fresh.WriteJSON(&fj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ej.Bytes(), fj.Bytes()) {
		t.Error("extended cached JSON differs from a cache-free serial run")
	}
}

// TestDistributedSweepMatchesSerial is the distributed acceptance
// criterion end to end on real Scenario runs: a loopback coordinator
// farming a non-trivial grid slice to two worker processes executes
// every cell remotely (RunSweepWith's guard runner turns any local
// execution into an errored cell, which the byte comparison would
// expose), commits every result into the shared cache by digest, and
// emits JSON/CSV byte-identical to a cold serial run of the same grid
// and seed. A warm local rerun against the same cache then serves the
// remotely-computed entries without executing anything.
func TestDistributedSweepMatchesSerial(t *testing.T) {
	g := smallGrid(42)
	const rounds = 25
	ctx := context.Background()

	// The cold serial reference, no cache, no workers.
	serial, err := RunSweep(ctx, g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Two loopback workers running the real per-cell runners, exactly
	// as `autofl-sweep -worker` wires them.
	runners := func(r int, traced bool) sweep.Runner {
		if traced {
			return TracedSweepRunner(r)
		}
		return SweepRunner(r)
	}
	newWorker := func() *dist.Worker {
		w, err := dist.NewWorker("127.0.0.1:0", 2, runners)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		return w
	}
	w1, w2 := newWorker(), newWorker()

	dir := t.TempDir()
	shared, err := cache.Open(dir, SweepSignature(g, rounds))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	distStore, err := RunSweepWith(ctx, g, SweepOptions{
		MaxRounds:    rounds,
		Cache:        shared,
		CostSchedule: true,
		Workers:      []string{w1.Addr(), w2.Addr()},
		WorkerCells:  counts,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 0 local executions: every cell was a cache miss shipped remotely,
	// no cell errored (the guard runner errors any local attempt), and
	// the workers account for the whole grid.
	if st := shared.Stats(); st.Hits != 0 || st.Misses != g.Size() {
		t.Errorf("distributed cold stats = %+v, want %d misses", st, g.Size())
	}
	for _, r := range distStore.Results() {
		if r.Err != "" {
			t.Errorf("cell %s errored: %s", r.Cell.Key(), r.Err)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != g.Size() {
		t.Errorf("per-worker counts %v sum to %d, want %d", counts, total, g.Size())
	}

	// Remote results were committed into the shared cache by digest.
	if shared.Len() != g.Size() {
		t.Errorf("cache holds %d of %d remote results", shared.Len(), g.Size())
	}

	// Byte-identical JSON and CSV to the cold serial run.
	var sj, dj, sc, dc bytes.Buffer
	if err := serial.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := distStore.WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), dj.Bytes()) {
		t.Error("distributed JSON differs from cold serial JSON")
	}
	if err := serial.WriteCSV(&sc); err != nil {
		t.Fatal(err)
	}
	if err := distStore.WriteCSV(&dc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc.Bytes(), dc.Bytes()) {
		t.Error("distributed CSV differs from cold serial CSV")
	}
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}

	// A warm *local* rerun serves the remotely-computed entries: the
	// cache is placement-agnostic.
	warm, err := cache.Open(dir, SweepSignature(g, rounds))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmStore, err := RunSweepWith(ctx, g, SweepOptions{MaxRounds: rounds, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("warm local rerun executed cells: stats = %+v", st)
	}
	var wj bytes.Buffer
	if err := warmStore.WriteJSON(&wj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), wj.Bytes()) {
		t.Error("warm local JSON differs from cold serial JSON after remote commits")
	}
}

// TestSweepOptionsRejectsWorkersPlusExecutor pins the mutual-exclusion
// rule on the redesigned options surface.
func TestSweepOptionsRejectsWorkersPlusExecutor(t *testing.T) {
	g := smallGrid(1)
	_, err := RunSweepWith(context.Background(), g, SweepOptions{
		Workers: []string{"127.0.0.1:1"},
		Options: sweep.Options{Executor: &sweep.LocalExecutor{}},
	})
	if err == nil {
		t.Fatal("Workers plus an explicit Executor must be rejected")
	}
}

// TestSweepSignatureNormalizesRounds pins the 0 ≡ 1000 horizon rule so
// default and explicit invocations share cache entries.
func TestSweepSignatureNormalizesRounds(t *testing.T) {
	g := smallGrid(1)
	if SweepSignature(g, 0) != SweepSignature(g, 1000) {
		t.Error("MaxRounds 0 must normalize to the paper's 1000")
	}
	if SweepSignature(g, 100) == SweepSignature(g, 200) {
		t.Error("distinct horizons must produce distinct signatures")
	}
}

// TestSweepGridCoversEveryAxis pins the full grid to the public axis
// lists.
func TestSweepGridCoversEveryAxis(t *testing.T) {
	g := SweepGrid(1, 2)
	want := len(Workloads()) * len(Settings()) * len(DataScenarios()) *
		len(Environments()) * len(Policies()) * 2
	if g.Size() != want {
		t.Fatalf("Size = %d, want %d", g.Size(), want)
	}
}

// TestSweepRunnerUnknownAxis checks that a bad cell surfaces as a cell
// error, not a sweep failure.
func TestSweepRunnerUnknownAxis(t *testing.T) {
	g := sweep.Grid{Policies: []string{"NoSuchPolicy"}, Seed: 3}
	store, err := RunSweep(context.Background(), g, 5, sweep.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs := store.Results()
	if len(rs) != 1 || rs[0].Err == "" {
		t.Fatalf("unknown policy must produce a cell error: %+v", rs)
	}
}

// TestCrossHorizonCacheReuse is the trace-truncation acceptance
// criterion on real Scenario runs: a grid swept at -rounds 1000 into a
// cache answers a -rounds 200 re-query executing zero cells, with
// output byte-identical to a cold 200-round sweep; re-querying at 1000
// re-runs nothing but the cells no cached run can witness.
func TestCrossHorizonCacheReuse(t *testing.T) {
	// iid converges well inside 1000 rounds; noniid100 under Random
	// stalls and runs the full horizon — both serving paths (converged
	// entry, trace-prefix replay) are exercised.
	g := sweep.Grid{
		Workloads: []string{string(CNNMNIST)},
		Settings:  []string{string(S3)},
		Data:      []string{string(IdealIID), string(NonIID100)},
		Envs:      []string{string(EnvField)},
		Policies:  []string{string(PolicyRandom), string(PolicyAutoFL)},
		Seed:      99,
	}
	dir := t.TempDir()
	ctx := context.Background()

	long, err := cache.Open(dir, SweepSignature(g, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweepWith(ctx, g, SweepOptions{MaxRounds: 1000, Cache: long}); err != nil {
		t.Fatal(err)
	}
	if st := long.Stats(); st.Misses != g.Size() {
		t.Fatalf("long sweep stats = %+v", st)
	}
	if err := long.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-query at 200 rounds: zero executions, bytes identical to a
	// cold 200-round sweep.
	short, err := cache.Open(dir, SweepSignature(g, 200))
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	served, err := RunSweepWith(ctx, g, SweepOptions{MaxRounds: 200, Cache: short})
	if err != nil {
		t.Fatal(err)
	}
	if st := short.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("200-round re-query executed cells: stats = %+v", st)
	}
	cold, err := RunSweep(ctx, g, 200, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sj, cj bytes.Buffer
	if err := served.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := cold.WriteJSON(&cj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), cj.Bytes()) {
		t.Error("trace-served 200-round JSON differs from a cold 200-round sweep")
	}

	// Re-query at the original 1000: every cell still served (the
	// entries were recorded at this horizon).
	full, err := cache.Open(dir, SweepSignature(g, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if _, err := RunSweepWith(ctx, g, SweepOptions{MaxRounds: 1000, Cache: full}); err != nil {
		t.Fatal(err)
	}
	if st := full.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("1000-round re-query executed cells: stats = %+v", st)
	}
}
