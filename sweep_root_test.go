package autofl

import (
	"bytes"
	"context"
	"testing"

	"autofl/internal/sweep"
)

// smallGrid is a fast slice of the evaluation grid for end-to-end
// tests: 2 envs × 2 policies on CNN-MNIST/S3/IID.
func smallGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Workloads: []string{string(CNNMNIST)},
		Settings:  []string{string(S3)},
		Data:      []string{string(IdealIID)},
		Envs:      []string{string(EnvIdeal), string(EnvField)},
		Policies:  []string{string(PolicyRandom), string(PolicyPerformance)},
		Seed:      seed,
	}
}

// TestRunSweepDeterminism checks the acceptance bar end to end: a
// parallel sweep over real Scenario runs emits byte-identical sorted
// JSON to a -parallel=1 sweep at the same grid seed.
func TestRunSweepDeterminism(t *testing.T) {
	g := smallGrid(42)
	const rounds = 25
	serial, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel sweep JSON differs from serial at the same seed")
	}
	for _, r := range serial.Results() {
		if r.Err != "" {
			t.Errorf("cell %s failed: %s", r.Cell.Key(), r.Err)
		}
		if r.Outcome.Rounds == 0 {
			t.Errorf("cell %s ran no rounds", r.Cell.Key())
		}
	}
}

// TestSweepGridCoversEveryAxis pins the full grid to the public axis
// lists.
func TestSweepGridCoversEveryAxis(t *testing.T) {
	g := SweepGrid(1, 2)
	want := len(Workloads()) * len(Settings()) * len(DataScenarios()) *
		len(Environments()) * len(Policies()) * 2
	if g.Size() != want {
		t.Fatalf("Size = %d, want %d", g.Size(), want)
	}
}

// TestSweepRunnerUnknownAxis checks that a bad cell surfaces as a cell
// error, not a sweep failure.
func TestSweepRunnerUnknownAxis(t *testing.T) {
	g := sweep.Grid{Policies: []string{"NoSuchPolicy"}, Seed: 3}
	store, err := RunSweep(context.Background(), g, 5, sweep.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs := store.Results()
	if len(rs) != 1 || rs[0].Err == "" {
		t.Fatalf("unknown policy must produce a cell error: %+v", rs)
	}
}
